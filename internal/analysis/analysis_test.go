package analysis

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/mtree"
)

// perfData builds a CPI-like dataset with two classes split on "L2M":
//
//	L2M <= 0.01 : CPI = 0.5 + 10*BrMisPr
//	L2M >  0.01 : CPI = 0.8 + 150*L2M
func perfData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{
		{Name: "CPI"}, {Name: "L2M"}, {Name: "BrMisPr"},
	}, 0)
	for i := 0; i < n; i++ {
		var l2 float64
		if i%2 == 0 {
			l2 = rng.Float64() * 0.008
		} else {
			l2 = 0.012 + rng.Float64()*0.02
		}
		br := rng.Float64() * 0.02
		var cpi float64
		if l2 <= 0.01 {
			cpi = 0.5 + 10*br
		} else {
			cpi = 0.8 + 150*l2
		}
		d.MustAppend(dataset.Instance{cpi + 0.005*rng.NormFloat64(), l2, br})
	}
	return d
}

func buildTree(t *testing.T, d *dataset.Dataset) *mtree.Tree {
	t.Helper()
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 100
	cfg.Smooth = false
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestAnalyzeSectionContributions(t *testing.T) {
	d := perfData(2000, 1)
	tree := buildTree(t, d)
	// A high-L2M section.
	row := dataset.Instance{0, 0.02, 0.01}
	rep := AnalyzeSection(tree, row)
	if rep.LeafID == 0 {
		t.Fatal("no leaf assigned")
	}
	// The decomposition must be exact: baseline + contributions = CPI.
	sum := rep.Baseline
	for _, c := range rep.Contributions {
		sum += c.Cycles
	}
	if math.Abs(sum-rep.PredictedCPI) > 1e-9 {
		t.Errorf("decomposition sums to %v, predicted %v", sum, rep.PredictedCPI)
	}
	// L2M should dominate this section's contributions.
	if len(rep.Contributions) == 0 {
		t.Fatal("no contributions")
	}
	if rep.Contributions[0].Name != "L2M" {
		t.Errorf("top contribution %q, want L2M", rep.Contributions[0].Name)
	}
	// Fraction arithmetic (the paper's Eq. 4): coef*rate/CPI.
	top := rep.Contributions[0]
	if math.Abs(top.Fraction-top.Coef*top.Rate/rep.PredictedCPI) > 1e-12 {
		t.Error("fraction != coef*rate/CPI")
	}
	// With coef ~150 and rate 0.02, the L2M share should be large.
	if top.Fraction < 0.5 {
		t.Errorf("L2M share %.2f, want > 0.5", top.Fraction)
	}
}

func TestAnalyzeSectionPathDirections(t *testing.T) {
	d := perfData(2000, 2)
	tree := buildTree(t, d)
	_, path := tree.Classify(dataset.Instance{0, 0.02, 0.01})
	foundHigh := false
	for _, s := range path {
		if s.Name == "L2M" && s.Above {
			foundHigh = true
		}
	}
	if !foundHigh {
		t.Error("high-L2M section not routed through L2M high side")
	}
}

func TestAnalyzeWorkloadRanking(t *testing.T) {
	d := perfData(2000, 3)
	tree := buildTree(t, d)
	// Analyze only high-L2M rows: L2M must rank first.
	high := d.EmptyLike()
	for i := 0; i < d.Len(); i++ {
		if d.Value(i, 1) > 0.01 {
			high.MustAppend(d.Row(i).Clone())
		}
	}
	rep := AnalyzeWorkload(tree, high)
	if rep.N != high.Len() {
		t.Errorf("analyzed %d, want %d", rep.N, high.Len())
	}
	if len(rep.Issues) == 0 {
		t.Fatal("no issues ranked")
	}
	if rep.Issues[0].Name != "L2M" {
		t.Errorf("top issue %q, want L2M", rep.Issues[0].Name)
	}
	var total float64
	for _, f := range rep.LeafShare {
		total += f
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("leaf shares sum to %v", total)
	}
	if !strings.Contains(rep.Render(), "L2M") {
		t.Error("render missing top issue")
	}
}

func TestSplitImpactsMeanDifference(t *testing.T) {
	d := perfData(3000, 4)
	tree := buildTree(t, d)
	impacts := SplitImpacts(tree, d)
	if len(impacts) == 0 {
		t.Fatal("no splits analyzed")
	}
	var l2 *SplitImpact
	for i := range impacts {
		if impacts[i].Name == "L2M" && impacts[i].Depth == 0 {
			l2 = &impacts[i]
		}
	}
	if l2 == nil {
		t.Fatal("root L2M split not reported")
	}
	if l2.LowN == 0 || l2.HighN == 0 {
		t.Error("split sides empty")
	}
	// High side mean CPI ~ 0.8+150*0.022 ≈ 4.1; low side ~0.6.
	if l2.MeanDifference < 1 {
		t.Errorf("mean difference %v too small", l2.MeanDifference)
	}
	if l2.FractionOfHigh <= 0 || l2.FractionOfHigh > 1 {
		t.Errorf("fraction of high %v out of range", l2.FractionOfHigh)
	}
	if l2.RSquared < 0.5 {
		t.Errorf("R² %v too small for the dominant split", l2.RSquared)
	}
	if !strings.Contains(RenderSplitImpacts(impacts), "L2M") {
		t.Error("render missing split")
	}
}

func TestSingleVarR2PerfectLinear(t *testing.T) {
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	for i := 0; i < 50; i++ {
		x := float64(i)
		d.MustAppend(dataset.Instance{3*x + 2, x})
	}
	if got := singleVarR2(d, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("R² = %v, want 1", got)
	}
}

func TestSingleVarR2Degenerate(t *testing.T) {
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	d.MustAppend(dataset.Instance{1, 1})
	if got := singleVarR2(d, 1); got != 0 {
		t.Errorf("R² of single point = %v", got)
	}
}

func TestCensus(t *testing.T) {
	d := perfData(2000, 5)
	tree := buildTree(t, d)
	// Build a fake labeled collection: first half "benchA" (low L2M rows
	// interleaved), second half "benchB".
	col := &counters.Collection{Data: d.Clone()}
	for i := 0; i < d.Len(); i++ {
		name := "benchA"
		if d.Value(i, 1) > 0.01 {
			name = "benchB"
		}
		col.Labels = append(col.Labels, counters.SectionLabel{Benchmark: name, Section: i})
	}
	c := Census(tree, col)
	if len(c.Benchmarks) != 2 {
		t.Fatalf("census has %d benchmarks", len(c.Benchmarks))
	}
	for name, shares := range c.Benchmarks {
		total := 0.0
		for _, f := range shares {
			total += f
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%s shares sum to %v", name, total)
		}
	}
	// benchB (high L2M) must be concentrated in one class.
	leaf, share := c.DominantLeaf("benchB")
	if share < 0.9 {
		t.Errorf("benchB dominant share %.2f in LM%d, want > 0.9", share, leaf)
	}
	if got := c.Share("benchB", leaf); got != share {
		t.Errorf("Share lookup %v != dominant %v", got, share)
	}
	if _, s := c.DominantLeaf("missing"); s != 0 {
		t.Error("unknown benchmark has nonzero dominant share")
	}
	if !strings.Contains(c.Render(), "benchA") {
		t.Error("census render missing benchmark")
	}
}
