// Package analysis implements the paper's performance-analysis layer on
// top of a trained model tree (Section IV.C and V.A of the paper). It
// answers the two questions of the problem formulation:
//
//   - the "what" question: which micro-architectural events limit a
//     workload's performance — read from the leaf model's terms and from
//     the high-side split variables on the path to the leaf; and
//   - the "how much" question: the expected gain from eliminating each
//     event — the fractional contribution coef*X/CPI of each leaf-model
//     term (the paper's Eq. 4 walk-through: 6.69*L1IM/CPI ≈ 20%), and the
//     subtree-mean difference for split variables that do not appear in
//     the linear model (the paper's LdBlSta example: ≈ 0.30 CPI, 35%).
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/mtree"
)

// Contribution is one event's share of a section's predicted CPI.
type Contribution struct {
	// Attr is the dataset column of the event.
	Attr int
	// Name is the event name, e.g. "L1IM".
	Name string
	// Coef is the leaf-model coefficient (cycles per event per
	// instruction).
	Coef float64
	// Rate is the section's per-instruction event rate.
	Rate float64
	// Cycles is Coef*Rate, the event's CPI contribution.
	Cycles float64
	// Fraction is Cycles/predicted CPI — the potential relative gain from
	// eliminating the event.
	Fraction float64
}

// SectionReport analyzes one section (dataset row).
type SectionReport struct {
	// LeafID is the class (LM number) the section falls into.
	LeafID int
	// Path is the decision path from the root; steps with Above=true mark
	// events whose high counts define this class (implicit performance
	// limiters in the paper's terminology).
	Path []mtree.PathStep
	// PredictedCPI is the leaf model's estimate (unsmoothed, so that the
	// contribution arithmetic is exact for the displayed equation).
	PredictedCPI float64
	// Contributions lists the leaf-model terms, largest CPI share first.
	Contributions []Contribution
	// Baseline is the leaf model's intercept: the CPI not attributed to
	// any counted event.
	Baseline float64
}

// AnalyzeSection classifies a section and decomposes its predicted CPI
// into per-event contributions (the "what" and "how much" answers).
func AnalyzeSection(t *mtree.Tree, row dataset.Instance) SectionReport {
	leaf, path := t.Classify(row)
	pred := leaf.Model.Predict(row)
	rep := SectionReport{
		LeafID:       leaf.LeafID,
		Path:         path,
		PredictedCPI: pred,
		Baseline:     leaf.Model.Intercept,
	}
	for i, a := range leaf.Model.Attrs {
		coef := leaf.Model.Coefs[i]
		if coef == 0 {
			continue
		}
		rate := row[a]
		cyc := coef * rate
		var frac float64
		if pred != 0 {
			frac = cyc / pred
		}
		name := fmt.Sprintf("x%d", a)
		if a >= 0 && a < len(t.AttrNames) {
			name = t.AttrNames[a]
		}
		rep.Contributions = append(rep.Contributions, Contribution{
			Attr: a, Name: name, Coef: coef, Rate: rate, Cycles: cyc, Fraction: frac,
		})
	}
	sort.SliceStable(rep.Contributions, func(i, j int) bool {
		return rep.Contributions[i].Cycles > rep.Contributions[j].Cycles
	})
	return rep
}

// Issue is one ranked performance problem aggregated over a workload.
type Issue struct {
	Name string
	// MeanFraction is the mean fractional CPI contribution across the
	// workload's sections (sections where the event is absent count as
	// zero).
	MeanFraction float64
	// MeanCycles is the mean absolute CPI contribution.
	MeanCycles float64
	// Sections is the number of sections where the event contributes
	// positively.
	Sections int
}

// WorkloadReport aggregates section analyses over a whole workload run.
type WorkloadReport struct {
	// N is the number of sections analyzed.
	N int
	// MeanCPI is the mean predicted CPI.
	MeanCPI float64
	// LeafShare maps LeafID to the fraction of sections classified there.
	LeafShare map[int]float64
	// Issues ranks events by mean fractional contribution — the answer to
	// "what should be optimized first, and how much is it worth".
	Issues []Issue
}

// AnalyzeWorkload runs AnalyzeSection over every row of d and aggregates
// the ranked issue list.
func AnalyzeWorkload(t *mtree.Tree, d *dataset.Dataset) WorkloadReport {
	rep := WorkloadReport{LeafShare: map[int]float64{}}
	sums := map[string]*Issue{}
	for i := 0; i < d.Len(); i++ {
		sr := AnalyzeSection(t, d.Row(i))
		rep.N++
		rep.MeanCPI += sr.PredictedCPI
		rep.LeafShare[sr.LeafID]++
		for _, c := range sr.Contributions {
			if c.Cycles <= 0 {
				continue
			}
			is := sums[c.Name]
			if is == nil {
				is = &Issue{Name: c.Name}
				sums[c.Name] = is
			}
			is.MeanFraction += c.Fraction
			is.MeanCycles += c.Cycles
			is.Sections++
		}
	}
	if rep.N > 0 {
		rep.MeanCPI /= float64(rep.N)
		for id := range rep.LeafShare {
			rep.LeafShare[id] /= float64(rep.N)
		}
	}
	for _, is := range sums {
		is.MeanFraction /= float64(rep.N)
		is.MeanCycles /= float64(rep.N)
		rep.Issues = append(rep.Issues, *is)
	}
	sort.SliceStable(rep.Issues, func(i, j int) bool {
		return rep.Issues[i].MeanFraction > rep.Issues[j].MeanFraction
	})
	return rep
}

// Render formats the workload report for terminal output.
func (r WorkloadReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sections analyzed: %d, mean predicted CPI %.3f\n", r.N, r.MeanCPI)
	type share struct {
		id int
		f  float64
	}
	shares := make([]share, 0, len(r.LeafShare))
	for id, f := range r.LeafShare {
		shares = append(shares, share{id, f})
	}
	// Tie-break equal shares by leaf ID so the rendering does not depend
	// on map iteration order.
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].f != shares[j].f {
			return shares[i].f > shares[j].f
		}
		return shares[i].id < shares[j].id
	})
	b.WriteString("class membership:")
	for _, s := range shares {
		fmt.Fprintf(&b, " LM%d:%.1f%%", s.id, 100*s.f)
	}
	b.WriteString("\n\nranked performance issues (what / how much):\n")
	fmt.Fprintf(&b, "%-12s %14s %12s %10s\n", "event", "gain if fixed", "CPI cycles", "sections")
	for _, is := range r.Issues {
		fmt.Fprintf(&b, "%-12s %13.1f%% %12.4f %10d\n",
			is.Name, 100*is.MeanFraction, is.MeanCycles, is.Sections)
	}
	return b.String()
}
