// Package analysis implements the paper's performance-analysis layer on
// top of a trained model tree (Section IV.C and V.A of the paper). It
// answers the two questions of the problem formulation:
//
//   - the "what" question: which micro-architectural events limit a
//     workload's performance — read from the leaf model's terms and from
//     the high-side split variables on the path to the leaf; and
//   - the "how much" question: the expected gain from eliminating each
//     event — the fractional contribution coef*X/CPI of each leaf-model
//     term (the paper's Eq. 4 walk-through: 6.69*L1IM/CPI ≈ 20%), and the
//     subtree-mean difference for split variables that do not appear in
//     the linear model (the paper's LdBlSta example: ≈ 0.30 CPI, 35%).
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mtree"
)

// Contribution is one event's share of a section's predicted CPI. It is
// the shared model.Contribution type: the decomposition is computed by
// the model itself (Tree.Contributions / Bagger.Contributions), and this
// package aggregates and renders it.
type Contribution = model.Contribution

// SectionReport analyzes one section (dataset row).
type SectionReport struct {
	// LeafID is the class (LM number) the section falls into.
	LeafID int
	// Path is the decision path from the root; steps with Above=true mark
	// events whose high counts define this class (implicit performance
	// limiters in the paper's terminology).
	Path []mtree.PathStep
	// PredictedCPI is the leaf model's estimate (unsmoothed, so that the
	// contribution arithmetic is exact for the displayed equation).
	PredictedCPI float64
	// Contributions lists the leaf-model terms, largest CPI share first.
	Contributions []Contribution
	// Baseline is the leaf model's intercept: the CPI not attributed to
	// any counted event.
	Baseline float64
}

// AnalyzeSection classifies a section and decomposes its predicted CPI
// into per-event contributions (the "what" and "how much" answers).
func AnalyzeSection(t *mtree.Tree, row dataset.Instance) SectionReport {
	leaf, path := t.Classify(row)
	return SectionReport{
		LeafID:        leaf.LeafID,
		Path:          path,
		PredictedCPI:  leaf.Model.Predict(row),
		Baseline:      leaf.Model.Intercept,
		Contributions: t.Contributions(row),
	}
}

// Issue is one ranked performance problem aggregated over a workload.
type Issue struct {
	Name string
	// MeanFraction is the mean fractional CPI contribution across the
	// workload's sections (sections where the event is absent count as
	// zero).
	MeanFraction float64
	// MeanCycles is the mean absolute CPI contribution.
	MeanCycles float64
	// Sections is the number of sections where the event contributes
	// positively.
	Sections int
}

// WorkloadReport aggregates section analyses over a whole workload run.
type WorkloadReport struct {
	// N is the number of sections analyzed.
	N int
	// MeanCPI is the mean predicted CPI.
	MeanCPI float64
	// LeafShare maps LeafID to the fraction of sections classified there.
	LeafShare map[int]float64
	// Issues ranks events by mean fractional contribution — the answer to
	// "what should be optimized first, and how much is it worth".
	Issues []Issue
}

// AnalyzeWorkload runs the per-section decomposition over every row of d
// and aggregates the ranked issue list. It accepts any model.Model: a
// single tree is analyzed exactly as before (unsmoothed leaf predictions,
// per-leaf class membership); other models — e.g. the bagged ensemble —
// fall back to Predict and Contributions, and report no class shares
// because their sections do not land in a single leaf. A compiled tree
// (how binary model files load) decompiles to the pointer form first so
// both load paths produce the same report.
func AnalyzeWorkload(m model.Model, d *dataset.Dataset) WorkloadReport {
	tree, isTree := m.(*mtree.Tree)
	if c, ok := m.(*mtree.CompiledTree); ok {
		tree, isTree = c.Tree(), true
	}
	rep := WorkloadReport{LeafShare: map[int]float64{}}
	sums := map[string]*Issue{}
	for i := 0; i < d.Len(); i++ {
		var sr SectionReport
		if isTree {
			sr = AnalyzeSection(tree, d.Row(i))
		} else {
			sr = SectionReport{
				PredictedCPI:  m.Predict(d.Row(i)),
				Contributions: m.Contributions(d.Row(i)),
			}
		}
		rep.N++
		rep.MeanCPI += sr.PredictedCPI
		if sr.LeafID > 0 {
			rep.LeafShare[sr.LeafID]++
		}
		for _, c := range sr.Contributions {
			if c.Cycles <= 0 {
				continue
			}
			is := sums[c.Name]
			if is == nil {
				is = &Issue{Name: c.Name}
				sums[c.Name] = is
			}
			is.MeanFraction += c.Fraction
			is.MeanCycles += c.Cycles
			is.Sections++
		}
	}
	if rep.N > 0 {
		rep.MeanCPI /= float64(rep.N)
		for id := range rep.LeafShare {
			rep.LeafShare[id] /= float64(rep.N)
		}
	}
	for _, is := range sums {
		is.MeanFraction /= float64(rep.N)
		is.MeanCycles /= float64(rep.N)
		rep.Issues = append(rep.Issues, *is)
	}
	sort.SliceStable(rep.Issues, func(i, j int) bool {
		return rep.Issues[i].MeanFraction > rep.Issues[j].MeanFraction
	})
	return rep
}

// Render formats the workload report for terminal output.
func (r WorkloadReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sections analyzed: %d, mean predicted CPI %.3f\n", r.N, r.MeanCPI)
	type share struct {
		id int
		f  float64
	}
	shares := make([]share, 0, len(r.LeafShare))
	for id, f := range r.LeafShare {
		shares = append(shares, share{id, f})
	}
	// Tie-break equal shares by leaf ID so the rendering does not depend
	// on map iteration order.
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].f != shares[j].f {
			return shares[i].f > shares[j].f
		}
		return shares[i].id < shares[j].id
	})
	if len(shares) > 0 {
		b.WriteString("class membership:")
		for _, s := range shares {
			fmt.Fprintf(&b, " LM%d:%.1f%%", s.id, 100*s.f)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nranked performance issues (what / how much):\n")
	fmt.Fprintf(&b, "%-12s %14s %12s %10s\n", "event", "gain if fixed", "CPI cycles", "sections")
	for _, is := range r.Issues {
		fmt.Fprintf(&b, "%-12s %13.1f%% %12.4f %10d\n",
			is.Name, 100*is.MeanFraction, is.MeanCycles, is.Sections)
	}
	return b.String()
}
