package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/counters"
	"repro/internal/mtree"
)

// LeafCensus cross-tabulates workload provenance against tree classes: for
// each benchmark, the fraction of its sections landing in each leaf. This
// is the machinery behind the paper's narratives — "more than 95% of
// [436.cactusADM's] sections experience high L2 cache misses combined with
// a high rate of L1 instruction misses [LM18]", "more than 70% of
// [429.mcf's] sections are classified in LM17", "about 20% of [403.gcc's]
// sections experience performance degradation due to LCP stalls".
type LeafCensus struct {
	// Benchmarks maps benchmark name -> leaf ID -> fraction of that
	// benchmark's sections.
	Benchmarks map[string]map[int]float64
	// Totals maps benchmark name -> section count.
	Totals map[string]int
}

// Census classifies every labeled section of a collection through the
// tree.
func Census(t *mtree.Tree, col *counters.Collection) LeafCensus {
	c := LeafCensus{
		Benchmarks: map[string]map[int]float64{},
		Totals:     map[string]int{},
	}
	for i := 0; i < col.Data.Len(); i++ {
		name := col.Labels[i].Benchmark
		leaf, _ := t.Classify(col.Data.Row(i))
		m := c.Benchmarks[name]
		if m == nil {
			m = map[int]float64{}
			c.Benchmarks[name] = m
		}
		m[leaf.LeafID]++
		c.Totals[name]++
	}
	for name, m := range c.Benchmarks {
		total := float64(c.Totals[name])
		for id := range m {
			m[id] /= total
		}
	}
	return c
}

// DominantLeaf returns the leaf holding the largest share of the
// benchmark's sections and that share (0 if the benchmark is unknown).
// Exact ties go to the lowest leaf ID, keeping the result independent of
// map iteration order.
func (c LeafCensus) DominantLeaf(benchmark string) (leafID int, share float64) {
	for id, f := range c.Benchmarks[benchmark] {
		if f > share || (f == share && share > 0 && id < leafID) {
			leafID, share = id, f
		}
	}
	return leafID, share
}

// Share returns the fraction of the benchmark's sections in the given
// leaf.
func (c LeafCensus) Share(benchmark string, leafID int) float64 {
	return c.Benchmarks[benchmark][leafID]
}

// Render formats the census: one row per benchmark, dominant leaves first.
func (c LeafCensus) Render() string {
	names := make([]string, 0, len(c.Benchmarks))
	for n := range c.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s  %s\n", "benchmark", "sections", "leaf shares (descending)")
	for _, n := range names {
		type ls struct {
			id int
			f  float64
		}
		shares := make([]ls, 0, len(c.Benchmarks[n]))
		for id, f := range c.Benchmarks[n] {
			shares = append(shares, ls{id, f})
		}
		// Tie-break equal shares by leaf ID so the rendering does not
		// depend on map iteration order.
		sort.Slice(shares, func(i, j int) bool {
			if shares[i].f != shares[j].f {
				return shares[i].f > shares[j].f
			}
			return shares[i].id < shares[j].id
		})
		fmt.Fprintf(&b, "%-16s %8d ", n, c.Totals[n])
		for i, s := range shares {
			if i >= 4 {
				b.WriteString(" …")
				break
			}
			fmt.Fprintf(&b, " LM%d:%.0f%%", s.id, 100*s.f)
		}
		b.WriteString("\n")
	}
	return b.String()
}
