package analysis

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mtree"
)

// TestAnalysisOnPersistedTree mirrors the cmd/train -> cmd/analyze
// workflow: reports computed from a JSON round-tripped tree must match
// those from the live tree exactly.
func TestAnalysisOnPersistedTree(t *testing.T) {
	d := perfData(2000, 11)
	tree := buildTree(t, d)

	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := mtree.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	live := AnalyzeWorkload(tree, d)
	persisted := AnalyzeWorkload(back, d)
	if live.N != persisted.N || math.Abs(live.MeanCPI-persisted.MeanCPI) > 1e-12 {
		t.Errorf("workload reports differ: %+v vs %+v", live, persisted)
	}
	if len(live.Issues) != len(persisted.Issues) {
		t.Fatalf("issue counts differ: %d vs %d", len(live.Issues), len(persisted.Issues))
	}
	for i := range live.Issues {
		if live.Issues[i].Name != persisted.Issues[i].Name ||
			math.Abs(live.Issues[i].MeanFraction-persisted.Issues[i].MeanFraction) > 1e-12 {
			t.Errorf("issue %d differs: %+v vs %+v", i, live.Issues[i], persisted.Issues[i])
		}
	}

	liveImp := SplitImpacts(tree, d)
	persImp := SplitImpacts(back, d)
	if len(liveImp) != len(persImp) {
		t.Fatalf("impact counts differ")
	}
	for i := range liveImp {
		if liveImp[i].Name != persImp[i].Name ||
			math.Abs(liveImp[i].MeanDifference-persImp[i].MeanDifference) > 1e-12 {
			t.Errorf("impact %d differs", i)
		}
	}
}

// TestAnalysisOnCompiledTree: a compiled tree (the form binary model
// files load as) must produce the exact report the pointer tree does —
// same unsmoothed leaf decomposition, same class-membership shares —
// not the generic Predict/Contributions fallback.
func TestAnalysisOnCompiledTree(t *testing.T) {
	d := perfData(2000, 11)
	tree := buildTree(t, d)

	live := AnalyzeWorkload(tree, d)
	compiled := AnalyzeWorkload(mtree.Compile(tree), d)
	if live.N != compiled.N || live.MeanCPI != compiled.MeanCPI {
		t.Errorf("workload reports differ: %+v vs %+v", live, compiled)
	}
	if len(compiled.LeafShare) == 0 {
		t.Error("compiled-tree report lost its class-membership shares")
	}
	if len(live.LeafShare) != len(compiled.LeafShare) {
		t.Fatalf("leaf share counts differ: %d vs %d", len(live.LeafShare), len(compiled.LeafShare))
	}
	for id, f := range live.LeafShare {
		if compiled.LeafShare[id] != f {
			t.Errorf("leaf LM%d share %v vs %v", id, f, compiled.LeafShare[id])
		}
	}
	if live.Render() != compiled.Render() {
		t.Error("rendered reports differ between pointer and compiled tree")
	}
}

// TestSectionReportSmoothedVsLeaf documents that AnalyzeSection uses the
// raw leaf model (not the smoothed prediction), so the contribution
// arithmetic decomposes exactly.
func TestSectionReportSmoothedVsLeaf(t *testing.T) {
	d := perfData(2000, 12)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 100
	cfg.Smooth = true
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := d.Row(0)
	rep := AnalyzeSection(tree, row)
	leaf, _ := tree.Classify(row)
	if math.Abs(rep.PredictedCPI-leaf.Model.Predict(row)) > 1e-12 {
		t.Error("section report should use the leaf model prediction")
	}
	sum := rep.Baseline
	for _, c := range rep.Contributions {
		sum += c.Cycles
	}
	if math.Abs(sum-rep.PredictedCPI) > 1e-9 {
		t.Errorf("decomposition %v != prediction %v", sum, rep.PredictedCPI)
	}
}

// TestIssuesOmitNegativeContributions: events whose terms reduce predicted
// CPI in a section must not appear as positive "issues" for it.
func TestIssuesOmitNegativeContributions(t *testing.T) {
	d := perfData(2000, 13)
	tree := buildTree(t, d)
	rep := AnalyzeWorkload(tree, d)
	for _, is := range rep.Issues {
		if is.MeanCycles < 0 || is.MeanFraction < -1e-12 {
			t.Errorf("issue %s has negative aggregate contribution %v", is.Name, is.MeanCycles)
		}
	}
}
