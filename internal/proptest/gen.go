package proptest

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mtree"
	"repro/internal/sim/trace"
)

// Insts generates n dynamic instructions with a realistic mixture:
// sequential code from a handful of "functions" (hot PCs reused often,
// cold PCs far apart), loads/stores that hit a small hot set, stride over
// an array, or jump far away, taken/not-taken branches with varying
// targets, and the paper's hazard events (split accesses, misalignment,
// LCP stalls, store-blocked loads) sprinkled at generated rates. Every
// record is valid input for cpu.Run at any geometry.
func Insts(r *Rand, n int) []trace.Inst {
	insts := make([]trace.Inst, 0, n)

	// Per-trace character: event probabilities drawn once, so different
	// cases exercise different regimes (loopy vs branchy vs memory-bound).
	pLoad := r.Range(0.1, 0.35)
	pStore := r.Range(0.05, 0.2)
	pBranch := r.Range(0.05, 0.25)
	pFarData := r.Range(0, 0.15) // misses even in a big L2
	pStride := r.Range(0.2, 0.8) // prefetchable component
	pHazard := r.Range(0, 0.05)  // split/misalign/LCP/block events
	pFarCode := r.Range(0, 0.1)  // instruction-side misses
	pTaken := r.Range(0.2, 0.9)

	// Code layout: a few hot function bodies plus a cold region.
	nFuncs := r.IntBetween(1, 6)
	funcBase := make([]uint64, nFuncs)
	for i := range funcBase {
		funcBase[i] = 0x400000 + uint64(r.Intn(1<<14))*64
	}
	pc := funcBase[0]

	// Data layout: hot working set, a strided array, and a far heap.
	hotBase := uint64(0x10000000) + uint64(r.Intn(1<<10))*64
	hotLines := uint64(r.IntBetween(4, 64))
	arrBase := uint64(0x20000000) + uint64(r.Intn(1<<10))*4096
	stride := uint64([]int{4, 8, 16, 64, 128}[r.Intn(5)])
	arrPos := uint64(0)

	for len(insts) < n {
		var in trace.Inst
		in.PC = pc
		pc += 4
		if r.Bool(pFarCode) {
			// Jump the fetch stream to a cold code page.
			pc = 0x7f0000000000 + uint64(r.Intn(1<<16))*4096 + uint64(r.Intn(1024))*4
		} else if r.Bool(0.02) {
			pc = funcBase[r.Intn(nFuncs)]
		}

		u := r.Float64()
		switch {
		case u < pLoad:
			in.Kind = trace.Load
		case u < pLoad+pStore:
			in.Kind = trace.Store
		case u < pLoad+pStore+pBranch:
			in.Kind = trace.Branch
		default:
			in.Kind = trace.Other
		}

		switch in.Kind {
		case trace.Load, trace.Store:
			in.Size = []uint8{1, 2, 4, 8, 16}[r.Intn(5)]
			switch {
			case r.Bool(pFarData):
				in.Addr = 0x30000000 + uint64(r.Intn(1<<20))*64
			case r.Bool(pStride):
				in.Addr = arrBase + arrPos
				arrPos += stride
			default:
				in.Addr = hotBase + uint64(r.Intn(int(hotLines)))*64 + uint64(r.Intn(56))
			}
			if r.Bool(pHazard) {
				// Pick one hazard; a misaligned address also makes the
				// split-access path reachable for large sizes.
				switch r.Intn(5) {
				case 0:
					in.Addr |= 1
					in.Misaligned = true
				case 1:
					in.Addr = in.Addr/64*64 + 61 // crosses the 64B line for Size >= 4
					in.Misaligned = true
				case 2:
					if in.Kind == trace.Load {
						in.BlockSTA = true
					}
				case 3:
					if in.Kind == trace.Load {
						in.BlockSTD = true
					}
				case 4:
					if in.Kind == trace.Load {
						in.BlockOverlap = true
					}
				}
			}
			in.DepDist = uint8(r.Intn(9)) // 0 = independent, 1..8 = chain
		case trace.Branch:
			in.Taken = r.Bool(pTaken)
			in.Target = funcBase[r.Intn(nFuncs)] + uint64(r.Intn(256))*4
			if in.Taken {
				pc = in.Target
			}
		default:
			if r.Bool(pHazard) {
				in.LCP = true
			}
			in.DepDist = uint8(r.Intn(9))
		}
		insts = append(insts, in)
	}
	return insts
}

// PerfAttrNames is the schema used by PerfDataset: CPI target plus three
// per-instruction event rates, mirroring the serving tests' demo law.
var PerfAttrNames = []string{"CPI", "L1IM", "L2M", "DtlbLdM"}

// PerfDataset generates rows rows of a piecewise-linear CPI law over
// event rates — two regimes split on L2M, with generated coefficients and
// a little noise — so M5' has real structure to find. The target is
// column 0 ("CPI"). The coefficients vary per case; the functional form
// (linear within each regime) is what the model-tree invariants need.
func PerfDataset(r *Rand, rows int) *dataset.Dataset {
	attrs := make([]dataset.Attribute, len(PerfAttrNames))
	for i, n := range PerfAttrNames {
		attrs[i] = dataset.Attribute{Name: n}
	}
	d := dataset.MustNew(attrs, 0)

	base := r.Range(0.4, 1.2)
	cL1I := r.Range(2, 12)
	cL2 := r.Range(40, 160)
	cDtlb := r.Range(10, 60)
	knee := r.Range(0.001, 0.004)
	noise := r.Range(0, 0.01)

	for i := 0; i < rows; i++ {
		l1i := r.Range(0, 0.01)
		l2 := r.Range(0, 0.008)
		dt := r.Range(0, 0.003)
		var cpi float64
		if l2 > knee {
			cpi = base + 0.5 + cL2*l2 + cDtlb*dt
		} else {
			cpi = base + cL1I*l1i
		}
		cpi += noise * r.NormFloat64()
		if cpi < 0.1 {
			cpi = 0.1
		}
		d.MustAppend(dataset.Instance{cpi, l1i, l2, dt})
	}
	return d
}

// TreeConfig generates a Validate-legal M5' configuration spanning the
// knob space: leaf sizes, SD thresholds, pruning/smoothing/attribute
// dropping toggles, and both model-attribute policies.
func TreeConfig(r *Rand) mtree.Config {
	cfg := mtree.Config{
		MinLeaf:               r.IntBetween(2, 40),
		SDThresholdFraction:   r.Range(0.01, 0.2),
		Prune:                 r.Coin(),
		Smooth:                r.Coin(),
		SmoothingK:            r.Range(1, 30),
		DropAttributes:        r.Coin(),
		SubtreeAttributesOnly: r.Coin(),
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("proptest: generated invalid tree config: %v", err))
	}
	return cfg
}
