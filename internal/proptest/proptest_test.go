package proptest

import (
	"testing"

	"repro/internal/sim/trace"
)

// TestRandDeterministic: the same seed yields the same stream, different
// seeds yield different streams.
func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c, d := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided on %d of 1000 draws", same)
	}
}

// TestRandRanges: bounded draws stay in their documented ranges and are
// not degenerate.
func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		if v := r.IntBetween(3, 5); v < 3 || v > 5 {
			t.Fatalf("IntBetween(3,5) = %d", v)
		} else if v == 3 {
			seenLo = true
		} else if v == 5 {
			seenHi = true
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v", v)
		}
		if v := r.Range(-2, 3); v < -2 || v >= 3 {
			t.Fatalf("Range(-2,3) = %v", v)
		}
	}
	if !seenLo || !seenHi {
		t.Fatalf("IntBetween(3,5) never hit an endpoint (lo=%v hi=%v)", seenLo, seenHi)
	}
	// Bool(p) should track p roughly over many draws.
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if hits < 2000 || hits > 3000 {
		t.Fatalf("Bool(0.25) hit %d/10000 times", hits)
	}
}

// TestCaseSeedStable pins the seed-derivation function: if it changes,
// every recorded failing iteration number becomes meaningless, so the
// constants here must only change deliberately.
func TestCaseSeedStable(t *testing.T) {
	if a, b := CaseSeed("p", 0), CaseSeed("p", 1); a == b {
		t.Fatal("consecutive iterations share a seed")
	}
	if a, b := CaseSeed("p", 0), CaseSeed("q", 0); a == b {
		t.Fatal("different property names share a seed")
	}
	got := CaseSeed("example", 3)
	if got != CaseSeed("example", 3) {
		t.Fatal("CaseSeed is not a pure function")
	}
}

// TestRunDeterministic: Run hands each case a seed that depends only on
// (name, iteration), so two executions observe identical inputs.
func TestRunDeterministic(t *testing.T) {
	record := func() []uint64 {
		var draws []uint64
		Run(t, "record", 8, func(t *testing.T, r *Rand) {
			draws = append(draws, r.Uint64())
		})
		return draws
	}
	first := record()
	second := record()
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("recorded %d and %d draws", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run diverged at case %d", i)
		}
	}
}

// TestInstsValid: generated traces are well-formed — memory kinds carry a
// size, branches carry a target, hazard flags only appear on legal kinds.
func TestInstsValid(t *testing.T) {
	Run(t, "insts-valid", 20, func(t *testing.T, r *Rand) {
		insts := Insts(r, 500)
		if len(insts) != 500 {
			t.Fatalf("got %d insts", len(insts))
		}
		for i, in := range insts {
			switch in.Kind {
			case trace.Load, trace.Store:
				if in.Size == 0 {
					t.Fatalf("inst %d: memory op with Size 0", i)
				}
			case trace.Branch:
				if in.Taken && in.Target == 0 {
					t.Fatalf("inst %d: taken branch with zero target", i)
				}
			}
			if (in.BlockSTA || in.BlockSTD || in.BlockOverlap) && in.Kind != trace.Load {
				t.Fatalf("inst %d: store-block flag on %v", i, in.Kind)
			}
			if in.LCP && (in.Kind == trace.Load || in.Kind == trace.Store || in.Kind == trace.Branch) {
				t.Fatalf("inst %d: LCP on %v", i, in.Kind)
			}
		}
	})
}

// TestPerfDatasetValid: generated datasets have the documented schema and
// finite, plausible values (Append would already reject non-finite ones).
func TestPerfDatasetValid(t *testing.T) {
	Run(t, "perf-dataset-valid", 10, func(t *testing.T, r *Rand) {
		d := PerfDataset(r, 200)
		if d.Len() != 200 {
			t.Fatalf("got %d rows", d.Len())
		}
		if d.TargetName() != "CPI" || d.TargetIndex() != 0 {
			t.Fatalf("target = %q at %d", d.TargetName(), d.TargetIndex())
		}
		if got := d.NumAttrs(); got != len(PerfAttrNames) {
			t.Fatalf("got %d attrs", got)
		}
		for i := 0; i < d.Len(); i++ {
			if cpi := d.Row(i)[0]; cpi < 0.05 || cpi > 100 {
				t.Fatalf("row %d: implausible CPI %v", i, cpi)
			}
		}
	})
}

// TestTreeConfigValid: every generated configuration passes Validate
// (TreeConfig panics otherwise; this keeps the property alive even if
// that panic is ever removed).
func TestTreeConfigValid(t *testing.T) {
	Run(t, "tree-config-valid", 50, func(t *testing.T, r *Rand) {
		cfg := TreeConfig(r)
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
