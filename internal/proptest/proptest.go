// Package proptest is the repository's property-based and metamorphic
// testing harness. It provides a deterministic SplitMix64-seeded random
// source and a small runner that executes a property over many generated
// cases inside an ordinary `go test` run — no external dependencies, no
// nondeterministic shrinking, no time-based seeds.
//
// Determinism is the whole point: every case a property sees is a pure
// function of (property name, iteration index), so a failure reproduces
// identically on every machine and every run, and a suite that passes
// once keeps passing until the code under test changes. This is the same
// stance internal/parallel takes for concurrency (results independent of
// scheduling) applied to test-input generation, and it is what lets the
// metamorphic suites in internal/sim, internal/mtree, internal/ensemble
// and internal/serve act as a regression net for the hot-loop work: the
// golden hash pins one frozen workload, the properties pin the *physics*
// (cache monotonicity, counter bounds, Eq. 4 arithmetic, bit-identical
// serving) across thousands of generated ones.
package proptest

import (
	"math"
	"testing"
)

// golden64 is the 64-bit golden-ratio constant used by SplitMix64, the
// same increment internal/parallel uses for seed derivation.
const golden64 = 0x9e3779b97f4a7c15

// Rand is a deterministic SplitMix64 pseudo-random source. It is not
// safe for concurrent use; properties that fan out must derive one Rand
// per goroutine (see Split).
type Rand struct {
	state uint64
}

// NewRand returns a SplitMix64 source with the given seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// mix64 is the SplitMix64 output finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += golden64
	return mix64(r.state)
}

// Split derives an independent child source whose stream is a pure
// function of the parent's current state, without consuming it twice.
func (r *Rand) Split() *Rand { return &Rand{state: mix64(r.Uint64())} }

// Int63 returns a non-negative pseudo-random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a pseudo-random int in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("proptest: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntBetween returns a pseudo-random int in [lo, hi] inclusive.
func (r *Rand) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("proptest: IntBetween with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a pseudo-random float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Coin returns true with probability 1/2.
func (r *Rand) Coin() bool { return r.Uint64()&1 == 1 }

// NormFloat64 returns a standard normal variate (Box–Muller; one draw of
// the pair is discarded to keep the implementation stateless).
func (r *Rand) NormFloat64() float64 {
	// Guard u1 away from 0 so Log stays finite.
	u1 := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// nameSeed folds a property name into a 64-bit seed (FNV-1a, then
// scrambled so short names still differ in every bit).
func nameSeed(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// CaseSeed returns the seed of one property iteration: a pure function
// of the property name and iteration index, SplitMix64-style. Exported
// so a failing case can be replayed in isolation.
func CaseSeed(name string, iter int) uint64 {
	return mix64(nameSeed(name) + uint64(iter)*golden64)
}

// shortDivisor shrinks iteration counts under -short so the property
// suites stay a small fraction of the race-detector CI run.
const shortDivisor = 4

// Run executes prop as a subtest named name for iters generated cases.
// Case i receives a Rand seeded with CaseSeed(name, i); on the first
// failing case the runner reports the iteration and seed and stops, so
// the failure is replayable with Replay. Under -short the iteration
// count is divided by 4 (minimum 1).
func Run(t *testing.T, name string, iters int, prop func(t *testing.T, r *Rand)) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		n := iters
		if testing.Short() {
			if n = iters / shortDivisor; n < 1 {
				n = 1
			}
		}
		for i := 0; i < n; i++ {
			seed := CaseSeed(name, i)
			prop(t, NewRand(seed))
			if t.Failed() {
				t.Fatalf("property %q failed at iteration %d (replay: proptest.Replay(t, %q, %d, prop))",
					name, i, name, i)
			}
		}
	})
}

// Replay runs a single iteration of a property, for debugging a failure
// reported by Run.
func Replay(t *testing.T, name string, iter int, prop func(t *testing.T, r *Rand)) {
	t.Helper()
	prop(t, NewRand(CaseSeed(name, iter)))
}
