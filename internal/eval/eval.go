// Package eval provides the model-agnostic evaluation harness used
// throughout the reproduction: prediction-quality metrics and k-fold cross
// validation over any learner that implements Learner.
//
// The three metrics reported by the paper are the correlation coefficient
// (C), the mean absolute error (MAE) and the relative absolute error (RAE);
// RMSE and RRSE are included for completeness since Weka reports them
// alongside.
package eval

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

// Regressor predicts the target value of one instance.
type Regressor interface {
	Predict(row dataset.Instance) float64
}

// Learner trains a Regressor from a dataset. Implementations live in
// internal/mtree, internal/regtree, internal/ann, internal/svm,
// internal/naive and internal/linreg (via adapters).
type Learner interface {
	// Name identifies the learner in reports, e.g. "M5' model tree".
	Name() string
	// Train fits a model on the training set.
	Train(d *dataset.Dataset) (Regressor, error)
}

// LearnerFunc adapts a named training function to the Learner interface,
// letting callers wrap any package's Build/Train entry point:
//
//	eval.LearnerFunc{N: "M5'", F: func(d *dataset.Dataset) (eval.Regressor, error) {
//		return mtree.Build(d, cfg)
//	}}
type LearnerFunc struct {
	N string
	F func(d *dataset.Dataset) (Regressor, error)
}

// Name implements Learner.
func (l LearnerFunc) Name() string { return l.N }

// Train implements Learner.
func (l LearnerFunc) Train(d *dataset.Dataset) (Regressor, error) { return l.F(d) }

// Metrics aggregates prediction-quality statistics over a test set.
type Metrics struct {
	N           int     // number of test instances
	Correlation float64 // Pearson correlation between predicted and actual
	MAE         float64 // mean absolute error
	RAE         float64 // relative absolute error, fraction (0.0783 = 7.83%)
	RMSE        float64 // root mean squared error
	RRSE        float64 // root relative squared error, fraction
}

// String renders the metrics in the style of the paper's evaluation section.
func (m Metrics) String() string {
	return fmt.Sprintf("n=%d C=%.4f MAE=%.4f RAE=%.2f%% RMSE=%.4f RRSE=%.2f%%",
		m.N, m.Correlation, m.MAE, m.RAE*100, m.RMSE, m.RRSE*100)
}

// Compute evaluates predicted vs actual vectors. The relative errors are
// normalized by the errors of predicting the actuals' mean, as in Weka.
func Compute(predicted, actual []float64) (Metrics, error) {
	if len(predicted) != len(actual) {
		return Metrics{}, fmt.Errorf("eval: %d predictions vs %d actuals", len(predicted), len(actual))
	}
	n := len(actual)
	if n == 0 {
		return Metrics{}, fmt.Errorf("eval: empty evaluation set")
	}
	var sumP, sumA float64
	for i := 0; i < n; i++ {
		sumP += predicted[i]
		sumA += actual[i]
	}
	meanP, meanA := sumP/float64(n), sumA/float64(n)

	var cov, varP, varA, absErr, sqErr, absBase, sqBase float64
	for i := 0; i < n; i++ {
		dp, da := predicted[i]-meanP, actual[i]-meanA
		cov += dp * da
		varP += dp * dp
		varA += da * da
		e := predicted[i] - actual[i]
		absErr += math.Abs(e)
		sqErr += e * e
		absBase += math.Abs(da)
		sqBase += da * da
	}
	m := Metrics{N: n}
	if varP > 0 && varA > 0 {
		m.Correlation = cov / math.Sqrt(varP*varA)
	}
	m.MAE = absErr / float64(n)
	m.RMSE = math.Sqrt(sqErr / float64(n))
	if absBase > 0 {
		m.RAE = absErr / absBase
	}
	if sqBase > 0 {
		m.RRSE = math.Sqrt(sqErr / sqBase)
	}
	return m, nil
}

// Evaluate trains nothing; it runs an already-fitted regressor over a test
// set and computes metrics.
func Evaluate(r Regressor, test *dataset.Dataset) (Metrics, error) {
	pred := make([]float64, test.Len())
	act := make([]float64, test.Len())
	for i := 0; i < test.Len(); i++ {
		pred[i] = r.Predict(test.Row(i))
		act[i] = test.Target(i)
	}
	return Compute(pred, act)
}

// CVResult is the outcome of a cross validation: pooled out-of-fold
// predictions plus per-fold and pooled metrics.
type CVResult struct {
	LearnerName string
	Folds       []Metrics
	Pooled      Metrics   // metrics over all out-of-fold predictions at once
	Predicted   []float64 // out-of-fold predictions, aligned with Actual
	Actual      []float64
}

// MeanFoldMetrics averages the per-fold metrics, which is how Weka reports
// k-fold results.
func (r CVResult) MeanFoldMetrics() Metrics {
	var m Metrics
	if len(r.Folds) == 0 {
		return m
	}
	for _, f := range r.Folds {
		m.N += f.N
		m.Correlation += f.Correlation
		m.MAE += f.MAE
		m.RAE += f.RAE
		m.RMSE += f.RMSE
		m.RRSE += f.RRSE
	}
	k := float64(len(r.Folds))
	m.Correlation /= k
	m.MAE /= k
	m.RAE /= k
	m.RMSE /= k
	m.RRSE /= k
	return m
}

// CrossValidate runs seeded k-fold cross validation of the learner over d.
// Each instance is predicted exactly once, by the model trained on the
// folds that exclude it — matching the paper's protocol ("the prediction on
// each data point is performed using a model that was built on training
// data that does not include the data point").
//
// Folds train and score concurrently (par.Jobs workers); the fold
// partition is fixed up front by (k, seed) and results assemble in fold
// order, so CVResult is identical for every worker count. l.Train must be
// safe for concurrent use when par allows more than one worker — every
// learner in this repository is, since each Train call builds its model
// from scratch with its own seeded RNG. Pass parallel.Serial() for a
// learner that is not.
func CrossValidate(l Learner, d *dataset.Dataset, k int, seed int64, par parallel.Config) (CVResult, error) {
	folds, err := d.KFold(k, seed)
	if err != nil {
		return CVResult{}, err
	}
	type foldOut struct {
		m         Metrics
		pred, act []float64
	}
	outs, err := parallel.Map(par, folds, func(fi int, f dataset.Fold) (foldOut, error) {
		model, err := l.Train(f.Train)
		if err != nil {
			return foldOut{}, fmt.Errorf("eval: training fold %d: %w", fi, err)
		}
		pred := make([]float64, f.Test.Len())
		act := make([]float64, f.Test.Len())
		for i := 0; i < f.Test.Len(); i++ {
			pred[i] = model.Predict(f.Test.Row(i))
			act[i] = f.Test.Target(i)
		}
		fm, err := Compute(pred, act)
		if err != nil {
			return foldOut{}, fmt.Errorf("eval: scoring fold %d: %w", fi, err)
		}
		return foldOut{m: fm, pred: pred, act: act}, nil
	})
	if err != nil {
		return CVResult{}, err
	}
	res := CVResult{LearnerName: l.Name()}
	for _, o := range outs {
		res.Folds = append(res.Folds, o.m)
		res.Predicted = append(res.Predicted, o.pred...)
		res.Actual = append(res.Actual, o.act...)
	}
	pooled, err := Compute(res.Predicted, res.Actual)
	if err != nil {
		return CVResult{}, err
	}
	res.Pooled = pooled
	return res, nil
}
