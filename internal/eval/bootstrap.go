package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/parallel"
)

// Interval is a two-sided percentile confidence interval.
type Interval struct {
	Lo, Hi float64
}

func (iv Interval) String() string { return fmt.Sprintf("[%.4f, %.4f]", iv.Lo, iv.Hi) }

// BootstrapCI estimates percentile confidence intervals for the evaluation
// metrics by resampling (prediction, actual) pairs with replacement —
// the accuracy-estimation companion to cross validation that the paper's
// methodology (Kohavi 1995) discusses. level is the two-sided confidence
// level, e.g. 0.95; b is the number of resamples.
//
// Each resample draws from its own RNG seeded by parallel.DeriveSeed(seed,
// i), so the resamples are independent work items: they run concurrently
// (par.Jobs workers) and the intervals are identical for every worker
// count.
func BootstrapCI(predicted, actual []float64, b int, level float64, seed int64, par parallel.Config) (corr, mae, rae Interval, err error) {
	if len(predicted) != len(actual) || len(actual) == 0 {
		return corr, mae, rae, fmt.Errorf("eval: bad bootstrap input (%d vs %d)", len(predicted), len(actual))
	}
	if b < 10 {
		return corr, mae, rae, fmt.Errorf("eval: %d bootstrap resamples is too few", b)
	}
	if level <= 0 || level >= 1 {
		return corr, mae, rae, fmt.Errorf("eval: confidence level %v not in (0,1)", level)
	}
	n := len(actual)
	seeds := make([]int64, b)
	for i := range seeds {
		seeds[i] = parallel.DeriveSeed(seed, i)
	}
	type resample struct {
		m  Metrics
		ok bool // false for degenerate resamples, which are skipped
	}
	outs, _ := parallel.Map(par, seeds, func(_ int, s int64) (resample, error) {
		rng := rand.New(rand.NewSource(s))
		rp := make([]float64, n)
		ra := make([]float64, n)
		for j := 0; j < n; j++ {
			k := rng.Intn(n)
			rp[j], ra[j] = predicted[k], actual[k]
		}
		m, err := Compute(rp, ra)
		if err != nil {
			return resample{}, nil
		}
		return resample{m: m, ok: true}, nil
	})
	corrs := make([]float64, 0, b)
	maes := make([]float64, 0, b)
	raes := make([]float64, 0, b)
	for _, o := range outs {
		if !o.ok {
			continue
		}
		corrs = append(corrs, o.m.Correlation)
		maes = append(maes, o.m.MAE)
		raes = append(raes, o.m.RAE)
	}
	if len(corrs) == 0 {
		return corr, mae, rae, fmt.Errorf("eval: all bootstrap resamples degenerate")
	}
	alpha := (1 - level) / 2
	return percentileInterval(corrs, alpha), percentileInterval(maes, alpha), percentileInterval(raes, alpha), nil
}

// percentileInterval returns the (alpha, 1-alpha) percentile interval;
// v is reordered.
func percentileInterval(v []float64, alpha float64) Interval {
	sort.Float64s(v)
	lo := int(alpha * float64(len(v)))
	hi := int((1 - alpha) * float64(len(v)))
	if hi >= len(v) {
		hi = len(v) - 1
	}
	return Interval{Lo: v[lo], Hi: v[hi]}
}
