package eval

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

func TestComputePerfectPrediction(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	m, err := Compute(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if m.Correlation != 1 {
		t.Errorf("C = %v, want 1", m.Correlation)
	}
	if m.MAE != 0 || m.RAE != 0 || m.RMSE != 0 || m.RRSE != 0 {
		t.Errorf("errors nonzero for perfect prediction: %+v", m)
	}
}

func TestComputeMeanPrediction(t *testing.T) {
	actual := []float64{1, 2, 3, 4, 5}
	pred := []float64{3, 3, 3, 3, 3} // predicting the mean
	m, err := Compute(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	// RAE and RRSE are normalized by the mean predictor, so both are 100%.
	if math.Abs(m.RAE-1) > 1e-12 {
		t.Errorf("RAE = %v, want 1", m.RAE)
	}
	if math.Abs(m.RRSE-1) > 1e-12 {
		t.Errorf("RRSE = %v, want 1", m.RRSE)
	}
	if m.Correlation != 0 {
		t.Errorf("C = %v, want 0 for constant prediction", m.Correlation)
	}
}

func TestComputeHandValues(t *testing.T) {
	pred := []float64{1, 2}
	act := []float64{2, 4}
	m, err := Compute(pred, act)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MAE-1.5) > 1e-12 {
		t.Errorf("MAE = %v, want 1.5", m.MAE)
	}
	wantRMSE := math.Sqrt((1 + 4) / 2.0)
	if math.Abs(m.RMSE-wantRMSE) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", m.RMSE, wantRMSE)
	}
	// Baseline abs deviation: |2-3| + |4-3| = 2; abs err = 3; RAE = 1.5.
	if math.Abs(m.RAE-1.5) > 1e-12 {
		t.Errorf("RAE = %v, want 1.5", m.RAE)
	}
	if math.Abs(m.Correlation-1) > 1e-12 {
		t.Errorf("C = %v, want 1 (linear relationship)", m.Correlation)
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Compute(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestComputeAnticorrelation(t *testing.T) {
	act := []float64{1, 2, 3}
	pred := []float64{3, 2, 1}
	m, _ := Compute(pred, act)
	if math.Abs(m.Correlation+1) > 1e-12 {
		t.Errorf("C = %v, want -1", m.Correlation)
	}
}

// meanLearner predicts the training mean; used to validate the CV
// protocol.
type meanLearner struct{ trainCalls *int }

type meanModel struct{ mean float64 }

func (m meanModel) Predict(dataset.Instance) float64 { return m.mean }

func (l meanLearner) Name() string { return "mean" }
func (l meanLearner) Train(d *dataset.Dataset) (Regressor, error) {
	*l.trainCalls++
	return meanModel{d.TargetMean()}, nil
}

func newDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		d.MustAppend(dataset.Instance{2*x + 1, x})
	}
	return d
}

func TestCrossValidateProtocol(t *testing.T) {
	d := newDataset(50, 1)
	calls := 0
	res, err := CrossValidate(meanLearner{&calls}, d, 5, 3, parallel.Serial())
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("trained %d times, want 5", calls)
	}
	if len(res.Predicted) != d.Len() || len(res.Actual) != d.Len() {
		t.Errorf("out-of-fold predictions %d, want %d", len(res.Predicted), d.Len())
	}
	if len(res.Folds) != 5 {
		t.Errorf("fold metrics %d, want 5", len(res.Folds))
	}
	// A mean predictor has RAE ~1 pooled.
	if res.Pooled.RAE < 0.8 || res.Pooled.RAE > 1.3 {
		t.Errorf("mean learner pooled RAE = %v, want ~1", res.Pooled.RAE)
	}
}

func TestCrossValidateErrorPropagation(t *testing.T) {
	d := newDataset(10, 2)
	fail := LearnerFunc{N: "fail", F: func(*dataset.Dataset) (Regressor, error) {
		return nil, errors.New("boom")
	}}
	if _, err := CrossValidate(fail, d, 2, 1, parallel.Serial()); err == nil {
		t.Error("training error not propagated")
	}
	if _, err := CrossValidate(meanLearner{new(int)}, d, 100, 1, parallel.Serial()); err == nil {
		t.Error("k > n accepted")
	}
}

func TestEvaluate(t *testing.T) {
	d := newDataset(30, 4)
	// A perfect regressor for y = 2x+1.
	perfect := LearnerFunc{N: "perfect", F: func(*dataset.Dataset) (Regressor, error) {
		return regressorFunc(func(row dataset.Instance) float64 { return 2*row[1] + 1 }), nil
	}}
	model, _ := perfect.Train(d)
	m, err := Evaluate(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.MAE > 1e-12 || m.Correlation < 0.999999 {
		t.Errorf("perfect regressor metrics %+v", m)
	}
}

type regressorFunc func(dataset.Instance) float64

func (f regressorFunc) Predict(row dataset.Instance) float64 { return f(row) }

func TestMeanFoldMetrics(t *testing.T) {
	r := CVResult{Folds: []Metrics{
		{N: 10, Correlation: 0.9, MAE: 0.1, RAE: 0.2, RMSE: 0.3, RRSE: 0.4},
		{N: 10, Correlation: 0.7, MAE: 0.3, RAE: 0.4, RMSE: 0.5, RRSE: 0.6},
	}}
	m := r.MeanFoldMetrics()
	if m.N != 20 {
		t.Errorf("N = %d, want 20", m.N)
	}
	if math.Abs(m.Correlation-0.8) > 1e-12 || math.Abs(m.MAE-0.2) > 1e-12 {
		t.Errorf("mean metrics %+v", m)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{N: 5, Correlation: 0.98, MAE: 0.05, RAE: 0.0783}
	s := m.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String = %q", s)
	}
}

// Property: correlation is bounded in [-1, 1] and errors are non-negative.
func TestMetricsBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(n uint8) bool {
		k := int(n)%100 + 2
		pred := make([]float64, k)
		act := make([]float64, k)
		for i := range pred {
			pred[i] = rng.NormFloat64() * 10
			act[i] = rng.NormFloat64() * 10
		}
		m, err := Compute(pred, act)
		if err != nil {
			return false
		}
		return m.Correlation >= -1.0000001 && m.Correlation <= 1.0000001 &&
			m.MAE >= 0 && m.RAE >= 0 && m.RMSE >= 0 && m.RRSE >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
