package eval

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

func TestBootstrapCIBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	pred := make([]float64, n)
	act := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		act[i] = a
		pred[i] = a + 0.2*rng.NormFloat64()
	}
	point, err := Compute(pred, act)
	if err != nil {
		t.Fatal(err)
	}
	corr, mae, rae, err := BootstrapCI(pred, act, 500, 0.95, 7, parallel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Point estimates must fall inside their intervals.
	if point.Correlation < corr.Lo || point.Correlation > corr.Hi {
		t.Errorf("correlation %v outside CI %v", point.Correlation, corr)
	}
	if point.MAE < mae.Lo || point.MAE > mae.Hi {
		t.Errorf("MAE %v outside CI %v", point.MAE, mae)
	}
	if point.RAE < rae.Lo || point.RAE > rae.Hi {
		t.Errorf("RAE %v outside CI %v", point.RAE, rae)
	}
	// Intervals are proper.
	for _, iv := range []Interval{corr, mae, rae} {
		if iv.Lo > iv.Hi {
			t.Errorf("inverted interval %v", iv)
		}
	}
	// A good fit should have a tight, high correlation CI.
	if corr.Lo < 0.9 {
		t.Errorf("correlation CI %v unexpectedly low for a tight fit", corr)
	}
}

func TestBootstrapCINarrowsWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(n int) ([]float64, []float64) {
		p := make([]float64, n)
		a := make([]float64, n)
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()
			a[i] = x
			p[i] = x + 0.5*rng.NormFloat64()
		}
		return p, a
	}
	ps, as := mk(50)
	pl, al := mk(2000)
	cs, _, _, err := BootstrapCI(ps, as, 300, 0.95, 3, parallel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cl, _, _, err := BootstrapCI(pl, al, 300, 0.95, 3, parallel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if (cl.Hi - cl.Lo) >= (cs.Hi - cs.Lo) {
		t.Errorf("CI did not narrow with n: %v (n=2000) vs %v (n=50)", cl, cs)
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	if _, _, _, err := BootstrapCI([]float64{1}, []float64{1, 2}, 100, 0.95, 1, parallel.Config{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, _, err := BootstrapCI([]float64{1, 2}, []float64{1, 2}, 5, 0.95, 1, parallel.Config{}); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, _, _, err := BootstrapCI([]float64{1, 2}, []float64{1, 2}, 100, 1.5, 1, parallel.Config{}); err == nil {
		t.Error("bad level accepted")
	}
	if _, _, _, err := BootstrapCI(nil, nil, 100, 0.95, 1, parallel.Config{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	pred := []float64{1, 2, 3, 4, 5, 6}
	act := []float64{1.1, 2.2, 2.9, 4.3, 4.8, 6.1}
	a1, _, _, err := BootstrapCI(pred, act, 200, 0.9, 42, parallel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a2, _, _, err := BootstrapCI(pred, act, 200, 0.9, 42, parallel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("same seed produced different intervals")
	}
}
