// Package binfmt implements the container layer of the binary model
// format: a little-endian file of raw numeric sections behind a magic
// number, a format version and a section table. It exists so that a
// serve replica can bring up a large model registry with one read per
// file and direct slice construction — on a little-endian machine the
// float64/int32 payload sections are *aliased* (unsafe slice casts over
// the file buffer), not decoded, so load time is O(header) rather than
// O(model).
//
// Layout (all integers little-endian):
//
//	offset 0   magic    4 bytes  "M5MB"
//	offset 4   version  uint16   format version (currently 1)
//	offset 6   kind     uint16   payload kind (KindTree, KindEnsemble)
//	offset 8   count    uint32   number of sections
//	offset 12  reserved uint32   zero
//	offset 16  section table: count entries of
//	           {id uint32, reserved uint32, offset uint64, length uint64}
//	...        section payloads, each 8-byte aligned, zero-padded between
//
// Section ids are payload-kind-specific (internal/mtree and
// internal/ensemble define theirs); the container only guarantees that
// every section lies inside the file at an 8-aligned offset, which is
// what makes the zero-copy casts safe. Readers reject files from a
// future format version explicitly, mirroring the JSON schema_version
// policy, and every parse error names the section and byte offset that
// failed so a truncated or corrupt file is diagnosable from the message
// alone.
package binfmt

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"
)

// Magic identifies a binary model file ("M5 Model Binary").
const Magic = "M5MB"

// Version is the current container format version.
const Version = 1

// Payload kinds. The container dispatches loading on this, the binary
// analogue of the JSON "kind" discriminator.
const (
	KindTree     uint16 = 1
	KindEnsemble uint16 = 2
)

const (
	headerSize = 16
	entrySize  = 24
	// maxSections bounds the section count before the table is trusted,
	// so a corrupt count cannot provoke a huge allocation.
	maxSections = 1 << 20
)

// nativeLE reports whether the host is little-endian; when true, aligned
// payload sections are aliased instead of decoded.
var nativeLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Sniff reports whether data begins with the binary-model magic. It is
// how internal/modelio tells binary model files from JSON ones.
func Sniff(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic
}

// section is one parsed table entry.
type section struct {
	id       uint32
	off, len uint64
}

// File is a parsed container. Its accessors return views over the
// original buffer wherever alignment and endianness allow.
type File struct {
	// Kind is the payload kind (KindTree, KindEnsemble, ...).
	Kind uint16
	// FormatVersion is the container version the file declares.
	FormatVersion uint16
	data          []byte
	sections      []section
}

// Parse validates the header and section table of a binary model file.
// Section payloads are not touched — they are ranged-checked here and
// aliased lazily by the accessors.
func Parse(data []byte) (*File, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("binfmt: truncated header: file is %d bytes, header needs %d", len(data), headerSize)
	}
	if !Sniff(data) {
		return nil, fmt.Errorf("binfmt: bad magic %q at offset 0 (want %q)", data[:len(Magic)], Magic)
	}
	version := binary.LittleEndian.Uint16(data[4:])
	if version < 1 || version > Version {
		return nil, fmt.Errorf("binfmt: format version %d; this build reads versions 1..%d", version, Version)
	}
	f := &File{
		Kind:          binary.LittleEndian.Uint16(data[6:]),
		FormatVersion: version,
		data:          data,
	}
	count := binary.LittleEndian.Uint32(data[8:])
	if count > maxSections {
		return nil, fmt.Errorf("binfmt: section count %d at offset 8 exceeds the %d-section limit", count, maxSections)
	}
	tableEnd := headerSize + int(count)*entrySize
	if tableEnd > len(data) {
		return nil, fmt.Errorf("binfmt: section table truncated: %d sections need bytes 16..%d, file has %d",
			count, tableEnd, len(data))
	}
	f.sections = make([]section, count)
	for i := range f.sections {
		e := data[headerSize+i*entrySize:]
		s := section{
			id:  binary.LittleEndian.Uint32(e),
			off: binary.LittleEndian.Uint64(e[8:]),
			len: binary.LittleEndian.Uint64(e[16:]),
		}
		if s.off%8 != 0 {
			return nil, fmt.Errorf("binfmt: section table entry %d (id %d): offset %d is not 8-aligned", i, s.id, s.off)
		}
		if s.off > uint64(len(data)) || s.len > uint64(len(data))-s.off {
			return nil, fmt.Errorf("binfmt: section table entry %d (id %d): range [%d, %d+%d) extends past the %d-byte file",
				i, s.id, s.off, s.off, s.len, len(data))
		}
		f.sections[i] = s
	}
	return f, nil
}

// Sections returns the number of sections in the file — an upper bound
// loaders use to sanity-check counts a metadata section declares before
// trusting them for allocation.
func (f *File) Sections() int { return len(f.sections) }

// find returns the table entry for id, or an error naming the section.
func (f *File) find(id uint32, name string) (section, error) {
	for _, s := range f.sections {
		if s.id == id {
			return s, nil
		}
	}
	return section{}, fmt.Errorf("binfmt: missing section %s (id %d)", name, id)
}

// Bytes returns the raw payload of a section as a view over the file
// buffer. name is used in error messages only.
func (f *File) Bytes(id uint32, name string) ([]byte, error) {
	s, err := f.find(id, name)
	if err != nil {
		return nil, err
	}
	return f.data[s.off : s.off+s.len : s.off+s.len], nil
}

// elemCheck validates that a section's length divides into size-byte
// elements, returning the payload and element count.
func (f *File) elemCheck(id uint32, name string, size int) ([]byte, int, error) {
	s, err := f.find(id, name)
	if err != nil {
		return nil, 0, err
	}
	if s.len%uint64(size) != 0 {
		return nil, 0, fmt.Errorf("binfmt: section %s (id %d) at offset %d: length %d is not a multiple of %d",
			name, id, s.off, s.len, size)
	}
	return f.data[s.off : s.off+s.len], int(s.len) / size, nil
}

// aligned reports whether b's base pointer is aligned for size-byte
// element access. Parse guarantees 8-aligned section *offsets*; the
// buffer base itself is 8-aligned for any heap allocation the runtime
// hands out in practice, but the cast still verifies at run time and
// falls back to copying when the guarantee does not hold.
func aligned(b []byte, size int) bool {
	return uintptr(unsafe.Pointer(&b[0]))%uintptr(size) == 0
}

// F64 returns a section as []float64 — zero-copy on aligned
// little-endian hosts, decoded otherwise.
func (f *File) F64(id uint32, name string) ([]float64, error) {
	b, n, err := f.elemCheck(id, name, 8)
	if err != nil || n == 0 {
		return nil, err
	}
	if nativeLE && aligned(b, 8) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// I64 returns a section as []int64, zero-copy where possible.
func (f *File) I64(id uint32, name string) ([]int64, error) {
	b, n, err := f.elemCheck(id, name, 8)
	if err != nil || n == 0 {
		return nil, err
	}
	if nativeLE && aligned(b, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// I32 returns a section as []int32, zero-copy where possible.
func (f *File) I32(id uint32, name string) ([]int32, error) {
	b, n, err := f.elemCheck(id, name, 4)
	if err != nil || n == 0 {
		return nil, err
	}
	if nativeLE && aligned(b, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// U8 returns a section's payload bytes directly (a []uint8 view).
func (f *File) U8(id uint32, name string) ([]uint8, error) {
	return f.Bytes(id, name)
}

// Writer assembles a container file. Sections are emitted in Add order,
// each padded to an 8-byte boundary.
type Writer struct {
	kind uint16
	secs []struct {
		id   uint32
		data []byte
	}
}

// NewWriter creates a writer for the given payload kind.
func NewWriter(kind uint16) *Writer {
	return &Writer{kind: kind}
}

// Bytes adds a raw section. The data is retained, not copied, until
// WriteTo runs.
func (w *Writer) Bytes(id uint32, data []byte) {
	w.secs = append(w.secs, struct {
		id   uint32
		data []byte
	}{id, data})
}

// F64 adds a []float64 section in little-endian encoding.
func (w *Writer) F64(id uint32, v []float64) {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	w.Bytes(id, b)
}

// I64 adds an []int64 section in little-endian encoding.
func (w *Writer) I64(id uint32, v []int64) {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	w.Bytes(id, b)
}

// I32 adds an []int32 section in little-endian encoding.
func (w *Writer) I32(id uint32, v []int32) {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
	}
	w.Bytes(id, b)
}

// pad8 returns n rounded up to the next multiple of 8.
func pad8(n int) int { return (n + 7) &^ 7 }

// Size returns the exact byte length WriteTo will produce.
func (w *Writer) Size() int {
	n := headerSize + len(w.secs)*entrySize
	for _, s := range w.secs {
		n += pad8(len(s.data))
	}
	return n
}

// WriteTo emits the container: header, section table, then the padded
// payloads. The output is deterministic for a given sequence of Add
// calls, which is what makes binary persistence a byte-stable fixed
// point under write→read→write.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	buf := make([]byte, w.Size())
	copy(buf, Magic)
	binary.LittleEndian.PutUint16(buf[4:], Version)
	binary.LittleEndian.PutUint16(buf[6:], w.kind)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(w.secs)))

	off := headerSize + len(w.secs)*entrySize
	for i, s := range w.secs {
		e := buf[headerSize+i*entrySize:]
		binary.LittleEndian.PutUint32(e, s.id)
		binary.LittleEndian.PutUint64(e[8:], uint64(off))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.data)))
		copy(buf[off:], s.data)
		off += pad8(len(s.data))
	}
	n, err := out.Write(buf)
	return int64(n), err
}
