package binfmt

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// writeFile assembles a small two-section container for the tests.
func writeFile(t *testing.T) []byte {
	t.Helper()
	w := NewWriter(KindTree)
	w.F64(1, []float64{1.5, -2.25, math.Inf(1)})
	w.I32(2, []int32{-1, 7, 1 << 30})
	w.I64(3, []int64{42, -9})
	w.Bytes(4, []byte("hello")) // odd length: exercises padding
	var buf bytes.Buffer
	if n, err := w.WriteTo(&buf); err != nil || int(n) != w.Size() {
		t.Fatalf("WriteTo: n=%d err=%v (Size %d)", n, err, w.Size())
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := writeFile(t)
	f, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Kind != KindTree || f.FormatVersion != Version {
		t.Fatalf("kind %d version %d", f.Kind, f.FormatVersion)
	}
	if !Sniff(data) {
		t.Fatal("Sniff rejected a valid file")
	}
	f64, err := f.F64(1, "floats")
	if err != nil || len(f64) != 3 || f64[0] != 1.5 || f64[1] != -2.25 || !math.IsInf(f64[2], 1) {
		t.Fatalf("F64: %v %v", f64, err)
	}
	i32, err := f.I32(2, "ints")
	if err != nil || len(i32) != 3 || i32[0] != -1 || i32[2] != 1<<30 {
		t.Fatalf("I32: %v %v", i32, err)
	}
	i64, err := f.I64(3, "longs")
	if err != nil || len(i64) != 2 || i64[1] != -9 {
		t.Fatalf("I64: %v %v", i64, err)
	}
	raw, err := f.Bytes(4, "blob")
	if err != nil || string(raw) != "hello" {
		t.Fatalf("Bytes: %q %v", raw, err)
	}
}

func TestEmptySections(t *testing.T) {
	w := NewWriter(KindEnsemble)
	w.F64(1, nil)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v, err := f.F64(1, "empty"); err != nil || len(v) != 0 {
		t.Fatalf("empty section: %v %v", v, err)
	}
}

// TestParseErrors: every malformed prefix is rejected with a message
// that names what failed and where.
func TestParseErrors(t *testing.T) {
	valid := writeFile(t)
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty", nil, "truncated header"},
		{"short", valid[:7], "truncated header"},
		{"bad-magic", append([]byte("XXXX"), valid[4:]...), "bad magic"},
		{"header-only", valid[:headerSize], "section table truncated"},
		{"table-cut", valid[:headerSize+entrySize], "section table truncated"},
	}
	for _, c := range cases {
		if _, err := Parse(c.data); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}

	// Future version: explicit rejection, like the JSON schema_version.
	future := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(future[4:], Version+1)
	if _, err := Parse(future); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Errorf("future version: %v", err)
	}

	// A section whose range runs past the end of the file.
	long := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(long[headerSize+16:], uint64(len(long))) // section 0 length
	if _, err := Parse(long); err == nil || !strings.Contains(err.Error(), "extends past") {
		t.Errorf("overlong section: %v", err)
	}

	// A misaligned section offset.
	skew := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(skew[headerSize+8:], 17)
	if _, err := Parse(skew); err == nil || !strings.Contains(err.Error(), "not 8-aligned") {
		t.Errorf("misaligned section: %v", err)
	}
}

func TestAccessorErrors(t *testing.T) {
	f, err := Parse(writeFile(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.F64(99, "ghost"); err == nil || !strings.Contains(err.Error(), `missing section ghost (id 99)`) {
		t.Errorf("missing section: %v", err)
	}
	// Section 4 is 5 bytes long: not a whole number of float64s.
	if _, err := f.F64(4, "blob"); err == nil || !strings.Contains(err.Error(), "not a multiple of 8") {
		t.Errorf("ragged F64: %v", err)
	}
	if _, err := f.I32(4, "blob"); err == nil || !strings.Contains(err.Error(), "not a multiple of 4") {
		t.Errorf("ragged I32: %v", err)
	}
}
