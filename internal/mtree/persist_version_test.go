package mtree

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestPersistSchemaVersion checks the version envelope: written files
// carry the current schema_version, legacy files without the field (v0)
// stay loadable, and files from a future format are rejected with an
// explanatory error rather than misparsed.
func TestPersistSchemaVersion(t *testing.T) {
	d := piecewise(500, 0.1, 41)
	cfg := DefaultConfig()
	cfg.MinLeaf = 50
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	var v int
	if err := json.Unmarshal(raw["schema_version"], &v); err != nil || v != SchemaVersion {
		t.Fatalf("written schema_version = %s, want %d", raw["schema_version"], SchemaVersion)
	}

	// Current version round-trips.
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("current version rejected: %v", err)
	}
	if got, want := back.Predict(d.Row(0)), tree.Predict(d.Row(0)); got != want {
		t.Errorf("round-trip prediction %v != %v", got, want)
	}

	// Legacy v0: the same payload without the schema_version field.
	delete(raw, "schema_version")
	legacy, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(bytes.NewReader(legacy)); err != nil {
		t.Errorf("legacy v0 file rejected: %v", err)
	}

	// Future version: rejected with a clear error.
	raw["schema_version"] = json.RawMessage("99")
	future, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReadJSON(bytes.NewReader(future))
	if err == nil {
		t.Fatal("future schema_version accepted")
	}
	if !strings.Contains(err.Error(), "schema_version 99") {
		t.Errorf("unhelpful version error: %v", err)
	}
}
