package mtree

import (
	"testing"

	"repro/internal/eval"
)

func TestSubtreeAttributesOnlyRestrictsModels(t *testing.T) {
	d := piecewise(2000, 0.05, 31)
	cfg := DefaultConfig()
	cfg.MinLeaf = 100
	cfg.SubtreeAttributesOnly = true
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With Quinlan's restriction, every leaf-model attribute must come
	// from the leaf's pre-pruning subtree splits (ModelAttrs) or from the
	// splits on its root path.
	tree.WalkLeaves(func(n *Node, path []PathStep) {
		allowed := map[int]bool{}
		for _, a := range n.ModelAttrs {
			allowed[a] = true
		}
		for _, s := range path {
			allowed[s.Attr] = true
		}
		for i, a := range n.Model.Attrs {
			if n.Model.Coefs[i] != 0 && !allowed[a] {
				t.Errorf("leaf LM%d uses attribute %d outside subtree+path candidates", n.LeafID, a)
			}
		}
	})
}

func TestDropAttributesOffKeepsAll(t *testing.T) {
	d := piecewise(1500, 0.1, 32)
	on := DefaultConfig()
	on.MinLeaf = 200
	off := on
	off.DropAttributes = false
	tOn, err := Build(d, on)
	if err != nil {
		t.Fatal(err)
	}
	tOff, err := Build(d, off)
	if err != nil {
		t.Fatal(err)
	}
	count := func(tr *Tree) (total int) {
		tr.WalkLeaves(func(n *Node, _ []PathStep) {
			for _, c := range n.Model.Coefs {
				if c != 0 {
					total++
				}
			}
		})
		return total
	}
	if count(tOn) > count(tOff) {
		t.Errorf("dropping kept more terms (%d) than not dropping (%d)", count(tOn), count(tOff))
	}
}

func TestSmoothingKInfluence(t *testing.T) {
	d := piecewise(2000, 0.05, 33)
	light := DefaultConfig()
	light.MinLeaf = 100
	light.SmoothingK = 1
	heavy := light
	heavy.SmoothingK = 1000
	tl, err := Build(d, light)
	if err != nil {
		t.Fatal(err)
	}
	th, err := Build(d, heavy)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy smoothing pulls predictions strongly toward ancestor models,
	// which hurts accuracy on cleanly-separated piecewise data.
	ml, err := eval.Evaluate(tl, d)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := eval.Evaluate(th, d)
	if err != nil {
		t.Fatal(err)
	}
	if mh.MAE <= ml.MAE {
		t.Errorf("k=1000 MAE %v not above k=1 MAE %v", mh.MAE, ml.MAE)
	}
}

func TestSDThresholdStopsSplitting(t *testing.T) {
	d := piecewise(2000, 0.05, 34)
	cfg := DefaultConfig()
	cfg.MinLeaf = 50
	cfg.SDThresholdFraction = 10 // absurdly high: nothing is heterogeneous enough
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Error("SD threshold did not stop splitting")
	}
}
