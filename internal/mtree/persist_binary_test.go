package mtree_test

// Properties of the binary model format: write→read→write is a
// byte-stable fixed point, loaded trees predict bit-identically to the
// source tree, the binary and JSON formats describe the same model, and
// truncated or corrupt files fail with descriptive errors instead of
// panicking or loading garbage.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mtree"
	"repro/internal/proptest"
)

// TestBinaryRoundTrip: persist→load→persist reproduces the same bytes,
// and the loaded compiled tree is observationally identical to the
// original — including through the JSON bridge (decompile → WriteJSON).
func TestBinaryRoundTrip(t *testing.T) {
	proptest.Run(t, "binary-roundtrip", 12, func(t *testing.T, r *proptest.Rand) {
		tree, _ := buildRandom(t, r)

		var b1 bytes.Buffer
		if err := tree.WriteBinary(&b1); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		loaded, err := mtree.ReadBinary(b1.Bytes())
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		var b2 bytes.Buffer
		if err := loaded.WriteBinary(&b2); err != nil {
			t.Fatalf("WriteBinary after load: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("binary persist -> load -> persist is not byte-identical")
		}

		for i := 0; i < 20; i++ {
			row := genRow(r)
			if loaded.Predict(row) != tree.Predict(row) {
				t.Fatalf("binary-loaded tree diverges on row %d", i)
			}
		}

		var wantJSON, gotJSON bytes.Buffer
		if err := tree.WriteJSON(&wantJSON); err != nil {
			t.Fatal(err)
		}
		if err := loaded.Tree().WriteJSON(&gotJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
			t.Fatal("binary round trip does not reproduce the JSON persisted form")
		}
	})
}

// TestBinaryCorruption: every truncation of a valid file, and a set of
// targeted corruptions, must produce an error — never a panic, never a
// silently wrong tree.
func TestBinaryCorruption(t *testing.T) {
	r := proptest.NewRand(proptest.CaseSeed(t.Name(), 0))
	tree, _ := buildRandom(t, r)
	var buf bytes.Buffer
	if err := tree.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	valid := buf.Bytes()

	if _, err := mtree.ReadBinary(valid); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	// Every truncation must either be rejected or — when only trailing
	// alignment padding was cut — still load the identical model.
	for n := 0; n < len(valid); n++ {
		loaded, err := mtree.ReadBinary(valid[:n])
		if err != nil {
			continue
		}
		var again bytes.Buffer
		if err := loaded.WriteBinary(&again); err != nil {
			t.Fatalf("truncation to %d bytes loaded but cannot re-persist: %v", n, err)
		}
		if !bytes.Equal(again.Bytes(), valid) {
			t.Fatalf("truncation to %d of %d bytes loaded a different model", n, len(valid))
		}
	}

	corrupt := func(name string, mutate func(b []byte), wantSub string) {
		b := append([]byte(nil), valid...)
		mutate(b)
		_, err := mtree.ReadBinary(b)
		if err == nil {
			t.Fatalf("%s: corrupt file was accepted", name)
		}
		if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}
	corrupt("bad magic", func(b []byte) { b[0] = 'X' }, "magic")
	corrupt("future version", func(b []byte) { b[4] = 0xFF }, "version")
	corrupt("wrong kind", func(b []byte) { b[6] = 0x7F }, "kind")
	corrupt("misaligned section", func(b []byte) { b[16+8]++ }, "aligned")
	corrupt("section out of range", func(b []byte) { b[16+8+6] = 0xFF }, "past")
}

// TestBinaryKindConfusion: a tree loader must reject an ensemble file
// (and Read the other way is checked in internal/ensemble).
func TestBinaryKindConfusion(t *testing.T) {
	r := proptest.NewRand(proptest.CaseSeed(t.Name(), 0))
	tree, _ := buildRandom(t, r)
	var buf bytes.Buffer
	if err := tree.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[6] = 2 // binfmt.KindEnsemble
	if _, err := mtree.ReadBinary(b); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("ensemble-kinded file accepted by tree loader: %v", err)
	}
}
