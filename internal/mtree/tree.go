package mtree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/linreg"
	"repro/internal/parallel"
)

// Node is one node of a model tree. Interior nodes route instances by
// comparing one attribute against a threshold (<= goes left); every node
// carries a linear model so that pruning can turn any interior node into a
// leaf.
type Node struct {
	// SplitAttr is the dataset column tested at this node (-1 for leaves).
	SplitAttr int
	// SplitName is the attribute name of SplitAttr, for rendering.
	SplitName string
	// Threshold is the split point; instances with value <= Threshold
	// descend left.
	Threshold float64
	// Left and Right are the children (nil for leaves).
	Left, Right *Node
	// Model is the linear model fitted at this node.
	Model *linreg.Model
	// N is the number of training instances that reached this node.
	N int
	// SD is the standard deviation of the target over those instances.
	SD float64
	// Mean is the mean target over those instances.
	Mean float64
	// LeafID numbers leaves in left-to-right order (1-based, matching the
	// paper's LM1..LM18 labels); 0 for interior nodes.
	LeafID int
	// ModelAttrs are the candidate attributes for this node's linear
	// model: the attributes tested in splits below this node in the
	// *unpruned* tree (M5's recipe). A node pruned to a leaf keeps the
	// candidates of its former subtree, which is how leaf equations like
	// the paper's LM8 retain multiple events.
	ModelAttrs []int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a trained M5' model tree.
type Tree struct {
	Root   *Node
	Config Config
	// TargetName is the dataset target column name (e.g. "CPI").
	TargetName string
	// AttrNames are the dataset attribute names by column index.
	AttrNames []string
	// TrainN is the size of the training set.
	TrainN int
	// GlobalSD is the target standard deviation of the training set.
	GlobalSD float64
	// Machine names the simulated machine the training collection ran on
	// (an internal/march registry name); empty when not recorded. Carried
	// through persistence, compilation and serving as a provenance tag.
	Machine string
}

// Build grows and (optionally) prunes an M5' tree on the dataset.
func Build(d *dataset.Dataset, cfg Config) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, errors.New("mtree: cannot build tree on empty dataset")
	}
	attrs := d.Attrs()
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = a.Name
	}
	t := &Tree{
		Config:     cfg,
		TargetName: d.TargetName(),
		AttrNames:  names,
		TrainN:     d.Len(),
		GlobalSD:   d.TargetStdDev(),
	}
	b := &builder{cfg: cfg, globalSD: t.GlobalSD, features: d.FeatureIndices()}
	t.Root = b.grow(d)
	if cfg.Prune {
		pruneNode(t.Root, d, cfg, nil)
	}
	fitModels(t.Root, d, cfg, nil)
	numberLeaves(t.Root)
	return t, nil
}

type builder struct {
	cfg      Config
	globalSD float64
	features []int
}

// grow recursively builds the unpruned tree. Models are fitted later (after
// pruning decides the final shape) except for the per-node statistics
// needed by pruning.
func (b *builder) grow(d *dataset.Dataset) *Node {
	n := &Node{
		SplitAttr: -1,
		N:         d.Len(),
		SD:        d.TargetStdDev(),
		Mean:      d.TargetMean(),
	}
	// Termination: too small to split, or already homogeneous.
	if d.Len() < 2*b.cfg.MinLeaf || n.SD < b.cfg.SDThresholdFraction*b.globalSD {
		return n
	}
	attr, threshold, ok := b.bestSplit(d)
	if !ok {
		return n
	}
	left, right := d.Split(attr, threshold)
	if left.Len() < b.cfg.MinLeaf || right.Len() < b.cfg.MinLeaf {
		// Defensive: bestSplit enforces this, but floating-point threshold
		// selection could in principle produce a degenerate partition.
		return n
	}
	n.SplitAttr = attr
	n.Threshold = threshold
	n.Left = b.grow(left)
	n.Right = b.grow(right)
	// Record the model candidates while the unpruned subtree is intact.
	set := map[int]bool{}
	subtreeSplitAttrs(n, set)
	n.ModelAttrs = make([]int, 0, len(set))
	for a := range set {
		n.ModelAttrs = append(n.ModelAttrs, a)
	}
	sort.Ints(n.ModelAttrs)
	return n
}

// splitParallelMinRows is the node size below which bestSplit always uses
// the serial scan: at small nodes goroutine fan-out costs more than the
// O(n log n) per-attribute sweeps it parallelizes. Determinism does not
// depend on this cutoff — both paths produce identical splits.
const splitParallelMinRows = 2048

// pair is one (attribute value, target) observation in a split sweep.
type pair struct{ x, y float64 }

// attrSplit is the best split found for a single attribute.
type attrSplit struct {
	sdr       float64 // standard-deviation reduction
	threshold float64
	ok        bool
}

// bestSplit searches all attributes and thresholds for the split that
// maximizes the standard deviation reduction
//
//	SDR = sd(T) - |L|/|T|*sd(L) - |R|/|T|*sd(R)
//
// subject to both children having at least MinLeaf instances. The search
// per attribute is O(n log n): sort by the attribute once and sweep with
// running sums. Attributes are scored independently — concurrently at
// large nodes — and reduced in ascending attribute order with a strict
// greater-than comparison, so exact SDR ties break toward the lowest
// attribute index regardless of goroutine scheduling.
func (b *builder) bestSplit(d *dataset.Dataset) (attr int, threshold float64, ok bool) {
	n := d.Len()
	sdT := d.TargetStdDev()

	// The total target sum and sum of squares feed every attribute's
	// suffix computation; they are constant across attributes, so compute
	// them once (in row order, making them identical for all attributes
	// and all worker counts).
	var totalSum, totalSq float64
	for i := 0; i < n; i++ {
		y := d.Target(i)
		totalSum += y
		totalSq += y * y
	}

	par := parallel.Config{Jobs: b.cfg.Jobs}
	var scores []attrSplit
	if par.Workers() > 1 && n >= splitParallelMinRows {
		scores, _ = parallel.Map(par, b.features, func(_ int, a int) (attrSplit, error) {
			return scoreAttribute(d, a, make([]pair, n), sdT, totalSum, totalSq, b.cfg.MinLeaf), nil
		})
	} else {
		scores = make([]attrSplit, len(b.features))
		pairs := make([]pair, n) // one buffer, reused across attributes
		for i, a := range b.features {
			scores[i] = scoreAttribute(d, a, pairs, sdT, totalSum, totalSq, b.cfg.MinLeaf)
		}
	}

	bestSDR := 0.0
	for i, s := range scores {
		if s.ok && s.sdr > bestSDR {
			bestSDR = s.sdr
			attr = b.features[i]
			threshold = s.threshold
			ok = true
		}
	}
	// Require a meaningful reduction; an SDR of zero means no split helps.
	if bestSDR <= 1e-12 {
		return 0, 0, false
	}
	return attr, threshold, ok
}

// scoreAttribute finds attribute a's best threshold by SDR. pairs is a
// caller-provided scratch buffer of length d.Len().
func scoreAttribute(d *dataset.Dataset, a int, pairs []pair, sdT, totalSum, totalSq float64, minLeaf int) (best attrSplit) {
	n := d.Len()
	lo, hi := d.Value(0, a), d.Value(0, a)
	for i := 0; i < n; i++ {
		v := d.Value(i, a)
		pairs[i] = pair{v, d.Target(i)}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// A constant attribute admits no split; skip the sort and sweep.
	if lo == hi {
		return attrSplit{}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].x < pairs[j].x })

	// Suffix sums for the right side; prefix accumulates the left.
	var leftSum, leftSq float64
	for i := 0; i < n-1; i++ {
		leftSum += pairs[i].y
		leftSq += pairs[i].y * pairs[i].y
		// A split between i and i+1 requires distinct attribute values.
		if pairs[i].x == pairs[i+1].x {
			continue
		}
		nl, nr := i+1, n-i-1
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		sdl := sdFromSums(leftSum, leftSq, nl)
		sdr := sdFromSums(totalSum-leftSum, totalSq-leftSq, nr)
		red := sdT - (float64(nl)*sdl+float64(nr)*sdr)/float64(n)
		if red > best.sdr {
			best = attrSplit{sdr: red, threshold: (pairs[i].x + pairs[i+1].x) / 2, ok: true}
		}
	}
	return best
}

func sdFromSums(sum, sq float64, n int) float64 {
	if n == 0 {
		return 0
	}
	mean := sum / float64(n)
	v := sq/float64(n) - mean*mean
	if v < 0 {
		v = 0 // guard against rounding
	}
	return math.Sqrt(v)
}

// subtreeSplitAttrs collects the attributes tested anywhere in the subtree
// rooted at n. M5 fits each node's linear model over exactly this set,
// which keeps leaf equations focused on the events that define the class.
func subtreeSplitAttrs(n *Node, into map[int]bool) {
	if n == nil || n.IsLeaf() {
		return
	}
	into[n.SplitAttr] = true
	subtreeSplitAttrs(n.Left, into)
	subtreeSplitAttrs(n.Right, into)
}

// fitModels fits linear models at every node of the (already pruned) tree,
// routing the dataset down the splits. path carries the split attributes on
// the way from the root, which join the model candidates.
func fitModels(n *Node, d *dataset.Dataset, cfg Config, path []int) {
	if n == nil {
		return
	}
	n.Model = fitNodeModel(n, d, cfg, path)
	if n.IsLeaf() {
		return
	}
	left, right := d.Split(n.SplitAttr, n.Threshold)
	childPath := append(path, n.SplitAttr)
	fitModels(n.Left, left, cfg, childPath)
	fitModels(n.Right, right, cfg, childPath)
}

// fitNodeModel fits the node's linear model. Candidate attributes are the
// splits in the node's (pre-pruning) subtree plus the splits on the path
// from the root — the events that *define* the node's class. The greedy
// elimination step then trims the set, producing the paper's compact leaf
// equations.
func fitNodeModel(n *Node, d *dataset.Dataset, cfg Config, path []int) *linreg.Model {
	var feats []int
	if cfg.SubtreeAttributesOnly {
		set := make(map[int]bool, len(n.ModelAttrs)+len(path))
		for _, a := range n.ModelAttrs {
			set[a] = true
		}
		for _, a := range path {
			set[a] = true
		}
		feats = make([]int, 0, len(set))
		for a := range set {
			feats = append(feats, a)
		}
		sort.Ints(feats)
	} else {
		feats = d.FeatureIndices()
	}
	if len(feats) == 0 {
		return linreg.FitConstant(d)
	}
	var m *linreg.Model
	var err error
	if cfg.DropAttributes {
		m, err = linreg.FitGreedy(d, feats)
	} else {
		m, err = linreg.Fit(d, feats)
	}
	if err != nil {
		return linreg.FitConstant(d)
	}
	return m
}

// numberLeaves assigns LeafID 1..k in left-to-right order.
func numberLeaves(root *Node) {
	id := 0
	var walk func(*Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			id++
			n.LeafID = id
			return
		}
		n.LeafID = 0
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
}

// NumLeaves returns the number of leaves (classes) in the tree.
func (t *Tree) NumLeaves() int {
	count := 0
	t.WalkLeaves(func(*Node, []PathStep) { count++ })
	return count
}

// Depth returns the maximum depth of the tree (a single leaf has depth 1).
func (t *Tree) Depth() int {
	var depth func(*Node) int
	depth = func(n *Node) int {
		if n == nil {
			return 0
		}
		l, r := depth(n.Left), depth(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(t.Root)
}

// PathStep records one decision on the way from the root to a node: the
// attribute tested, the threshold, and which side was taken. A step with
// Above=true means the instance had a *high* value of the split event,
// which the paper treats as a potential performance-improvement source.
type PathStep struct {
	Attr      int
	Name      string
	Threshold float64
	Above     bool
}

func (s PathStep) String() string {
	op := "<="
	if s.Above {
		op = ">"
	}
	return fmt.Sprintf("%s %s %.6g", s.Name, op, s.Threshold)
}

// WalkLeaves visits every leaf with its root path, left to right.
func (t *Tree) WalkLeaves(fn func(leaf *Node, path []PathStep)) {
	var walk func(n *Node, path []PathStep)
	walk = func(n *Node, path []PathStep) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			fn(n, path)
			return
		}
		step := PathStep{Attr: n.SplitAttr, Name: t.attrName(n.SplitAttr), Threshold: n.Threshold}
		walk(n.Left, append(path, step))
		step.Above = true
		walk(n.Right, append(path, step))
	}
	walk(t.Root, nil)
}

func (t *Tree) attrName(a int) string {
	if a >= 0 && a < len(t.AttrNames) {
		return t.AttrNames[a]
	}
	return defaultAttrName(a)
}

// defaultAttrName is the rendering fallback for a column with no
// recorded name, shared by the pointer and compiled trees.
func defaultAttrName(a int) string { return fmt.Sprintf("x%d", a) }
