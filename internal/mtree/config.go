// Package mtree implements the M5' model-tree learner (Quinlan's M5 as
// re-implemented by Wang & Witten for Weka), the primary contribution of
// the reproduced paper.
//
// An M5' tree recursively partitions the input space with axis-aligned
// splits chosen to maximize standard-deviation reduction (SDR), then fits a
// multiple linear regression at every node. Post-pruning replaces subtrees
// whose complexity-corrected error exceeds that of their node's own linear
// model, and optional smoothing blends leaf predictions with ancestor
// models along the root path. The result is a piecewise-linear predictor
// whose structure is interpretable: in the performance-analysis application
// each leaf is a workload class and each leaf equation prices the
// micro-architectural events for that class.
package mtree

import "fmt"

// Config holds the M5' hyper-parameters.
type Config struct {
	// MinLeaf is the minimum number of training instances allowed in a
	// leaf; no split may produce a child smaller than this. The paper uses
	// 430 for the performance dataset; Weka's default is 4.
	MinLeaf int

	// SDThresholdFraction stops splitting a node whose target standard
	// deviation is below this fraction of the standard deviation of the
	// whole training set. M5' uses 0.05 (5%).
	SDThresholdFraction float64

	// Prune enables complexity-corrected post-pruning (on by default,
	// matching the paper's two-phase grow-then-prune construction).
	Prune bool

	// Smooth enables M5 smoothing of predictions along the root path.
	Smooth bool

	// SmoothingK is the smoothing constant k in
	// p' = (n*p_below + k*p_node)/(n + k); M5 uses 15.
	SmoothingK float64

	// DropAttributes enables the greedy attribute-elimination step when
	// fitting node models, yielding the sparse leaf equations shown in the
	// paper. When false, every node model uses all candidate attributes.
	DropAttributes bool

	// SubtreeAttributesOnly restricts each node's linear model to the
	// attributes tested in splits beneath it in the unpruned tree plus the
	// splits on the path from the root — Quinlan's original M5 recipe.
	// When false (the default, matching Weka's M5'), node models may draw
	// on all features, and greedy elimination trims them back.
	SubtreeAttributesOnly bool

	// Jobs is the number of workers used to score candidate split
	// attributes at large nodes (0 = GOMAXPROCS, 1 = serial). Attribute
	// scores are reduced in ascending attribute order with a strict
	// greater-than comparison, so the chosen split — and therefore the
	// whole tree — is identical for every value of Jobs. An execution
	// knob, not a hyper-parameter: excluded from JSON persistence so
	// saved trees are byte-identical for every value.
	Jobs int `json:"-"`
}

// DefaultConfig returns Weka-like defaults: pruning and smoothing on,
// MinLeaf 4, SD threshold 5%, attribute dropping on.
func DefaultConfig() Config {
	return Config{
		MinLeaf:               4,
		SDThresholdFraction:   0.05,
		Prune:                 true,
		Smooth:                true,
		SmoothingK:            15,
		DropAttributes:        true,
		SubtreeAttributesOnly: false,
	}
}

// PaperConfig returns the configuration used in the paper's evaluation:
// Weka defaults with the experimentally chosen minimum leaf population of
// 430 instances.
func PaperConfig() Config {
	c := DefaultConfig()
	c.MinLeaf = 430
	return c
}

// Validate checks the hyper-parameters and returns a descriptive error
// for the first out-of-range value. Build (and everything layered on it:
// ensembles, cross validation, the serving registry) calls Validate up
// front, so a bad configuration fails at construction with a clear
// message instead of deep inside training. The zero value of unrelated
// knobs stays legal: SmoothingK is only required when Smooth is on, and
// Jobs accepts any value (non-positive means "all cores").
func (c Config) Validate() error {
	if c.MinLeaf < 1 {
		return fmt.Errorf("mtree: MinLeaf %d out of range (must be >= 1)", c.MinLeaf)
	}
	// Values above 1 are legal — they stop splitting entirely (a node's SD
	// can never exceed a multiple >1 of the global SD by much), which
	// tests and ablations use on purpose. Only negatives are nonsense.
	if c.SDThresholdFraction < 0 {
		return fmt.Errorf("mtree: SDThresholdFraction %v out of range (must be >= 0)", c.SDThresholdFraction)
	}
	if c.Smooth && c.SmoothingK <= 0 {
		return fmt.Errorf("mtree: SmoothingK %v out of range (must be > 0 when Smooth is enabled)", c.SmoothingK)
	}
	return nil
}
