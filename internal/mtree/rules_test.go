package mtree

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func builtTree(t *testing.T, seed int64) (*Tree, *dataset.Dataset) {
	t.Helper()
	d := piecewise(2000, 0.05, seed)
	cfg := DefaultConfig()
	cfg.MinLeaf = 100
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree, d
}

func TestRulesPartitionInputSpace(t *testing.T) {
	tree, d := builtTree(t, 21)
	rules := tree.Rules()
	if len(rules) != tree.NumLeaves() {
		t.Fatalf("%d rules for %d leaves", len(rules), tree.NumLeaves())
	}
	// Exactly one rule matches every training instance, and it is the one
	// the tree routes to.
	for i := 0; i < d.Len(); i++ {
		row := d.Row(i)
		matched := 0
		var matchedRule Rule
		for _, r := range rules {
			if r.Matches(row) {
				matched++
				matchedRule = r
			}
		}
		if matched != 1 {
			t.Fatalf("row %d matched %d rules", i, matched)
		}
		leaf, _ := tree.Classify(row)
		if matchedRule.LeafID != leaf.LeafID {
			t.Fatalf("rule LM%d disagrees with tree leaf LM%d", matchedRule.LeafID, leaf.LeafID)
		}
	}
}

func TestRulePredictMatchesUnsmoothedTree(t *testing.T) {
	tree, d := builtTree(t, 22)
	tree.Config.Smooth = false
	for i := 0; i < 100; i++ {
		row := d.Row(i)
		r := tree.RuleFor(row)
		if math.Abs(r.Predict(row)-tree.Predict(row)) > 1e-12 {
			t.Fatalf("rule prediction diverges from unsmoothed tree at row %d", i)
		}
	}
}

func TestRuleString(t *testing.T) {
	tree, _ := builtTree(t, 23)
	s := tree.RenderRules()
	if !strings.Contains(s, "IF ") || !strings.Contains(s, " THEN ") {
		t.Errorf("rules rendering:\n%s", s)
	}
	if !strings.Contains(s, "x1") {
		t.Errorf("rules missing split variable:\n%s", s)
	}
	// Single-leaf tree: the rule condition degenerates to "true".
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	for i := 0; i < 20; i++ {
		d.MustAppend(dataset.Instance{1, float64(i)})
	}
	one, err := Build(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := one.Rules()[0].String(); !strings.Contains(got, "IF true") {
		t.Errorf("degenerate rule: %q", got)
	}
}

func TestWriteDOT(t *testing.T) {
	tree, _ := builtTree(t, 24)
	var buf bytes.Buffer
	if err := tree.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph mtree", "->", "LM1", "x1", "}"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q:\n%s", want, s)
		}
	}
	// Edge count: a binary tree with L leaves has 2(L-1) edges.
	edges := strings.Count(s, "->")
	want := 2 * (tree.NumLeaves() - 1)
	if edges != want {
		t.Errorf("DOT has %d edges, want %d", edges, want)
	}
}
