package mtree

import (
	"repro/internal/dataset"
	"repro/internal/linreg"
	"repro/internal/model"
)

// CompiledTree is a trained tree flattened into contiguous arrays for
// branch-light, cache-friendly evaluation — the serving-side counterpart
// of the flat cache arrays in internal/sim/mem. Nodes are laid out in
// preorder: node 0 is the root and both children of any interior node
// have larger indices, so a root-to-leaf walk touches strictly
// increasing positions of a handful of slices instead of chasing heap
// pointers through scattered Node allocations. Per-node linear models
// are packed row-major into one coefficient arena (lmAttrs/lmCoefs,
// indexed through the lmOff prefix table), so evaluating the models
// along a smoothing path streams one contiguous region.
//
// A CompiledTree predicts bit-identically to the *Tree it was compiled
// from — same comparisons, same coefficient order, same smoothing
// arithmetic — which the differential property suite enforces. It
// implements model.Model (and Classify, so /v1/classify keeps working
// when the registry compiles on load) and adds the allocation-free
// batch kernel PredictInto that /v1/predict uses to amortize per-row
// overhead across a whole batch.
type CompiledTree struct {
	config     Config
	targetName string
	attrNames  []string
	trainN     int
	globalSD   float64
	machine    string

	splitAttr []int32   // split column, -1 for leaves
	threshold []float64 // split point, 0 for leaves
	left      []int32   // child indices, 0 for leaves
	right     []int32
	nodeN     []int64 // training instances that reached the node
	sd        []float64
	mean      []float64
	leafID    []int32

	lmOff       []int32 // len(nodes)+1 prefix offsets into lmAttrs/lmCoefs
	lmIntercept []float64
	lmAttrs     []int32
	lmCoefs     []float64
	hasLM       []uint8    // 1 when the node carries a fitted model
	lmNames     [][]string // per-node coefficient names (nil when absent)

	// walk packs the four walk-critical fields into one 24-byte record
	// per node, so each descent step touches a single cache line instead
	// of four parallel arrays. Derived from the arrays above (never
	// persisted); rebuilt after Compile and ReadBinary.
	walk []walkNode

	numLeaves int
	depth     int // maximum root-to-leaf node count
}

// walkNode is the hot-path view of one node: threshold, split attribute
// (-1 for leaves) and child indices (child[0] left, child[1] right),
// padded to 32 bytes so a record never straddles a cache line — the
// walk is a dependent load chain, and a straddling node would pay two
// fills per step. The child array lets the lane kernels select the next
// node branchlessly — `j := 0; if row > thr { j = 1 }` compiles to a
// conditional move, so a hard-to-predict split doesn't flush the other
// lanes' in-flight work.
type walkNode struct {
	thr   float64
	attr  int32
	child [2]int32
	_     int32
}

// buildWalk derives the packed walk records from the flat arrays.
func (c *CompiledTree) buildWalk() {
	c.walk = make([]walkNode, len(c.splitAttr))
	for i := range c.walk {
		c.walk[i] = walkNode{
			thr:   c.threshold[i],
			attr:  c.splitAttr[i],
			child: [2]int32{c.left[i], c.right[i]},
		}
	}
}

// CompiledTree serves through the same interface as the pointer tree.
var _ model.Model = (*CompiledTree)(nil)
var _ model.BatchPredictor = (*CompiledTree)(nil)

// compiledPathInline is the smoothing-path buffer kept on the stack; a
// tree deeper than this (never seen in practice — depth grows
// logarithmically in the training set) falls back to one heap path
// allocation per call.
const compiledPathInline = 64

// Compile flattens a trained tree. The result shares no state with t.
// Returns nil for a nil tree or a tree without a root.
func Compile(t *Tree) *CompiledTree {
	if t == nil || t.Root == nil {
		return nil
	}
	nodes := countNodes(t.Root)
	c := &CompiledTree{
		config:      t.Config,
		targetName:  t.TargetName,
		attrNames:   append([]string(nil), t.AttrNames...),
		trainN:      t.TrainN,
		globalSD:    t.GlobalSD,
		machine:     t.Machine,
		splitAttr:   make([]int32, nodes),
		threshold:   make([]float64, nodes),
		left:        make([]int32, nodes),
		right:       make([]int32, nodes),
		nodeN:       make([]int64, nodes),
		sd:          make([]float64, nodes),
		mean:        make([]float64, nodes),
		leafID:      make([]int32, nodes),
		lmOff:       make([]int32, nodes+1),
		lmIntercept: make([]float64, nodes),
		hasLM:       make([]uint8, nodes),
		lmNames:     make([][]string, nodes),
	}
	// Preorder assignment means coefficient rows are appended in node
	// index order, so the lmOff prefix table fills in the same pass.
	next := int32(0)
	var flatten func(n *Node) int32
	flatten = func(n *Node) int32 {
		i := next
		next++
		c.lmOff[i] = int32(len(c.lmCoefs))
		c.splitAttr[i] = -1
		c.nodeN[i] = int64(n.N)
		c.sd[i] = n.SD
		c.mean[i] = n.Mean
		c.leafID[i] = int32(n.LeafID)
		if m := n.Model; m != nil {
			c.hasLM[i] = 1
			c.lmIntercept[i] = m.Intercept
			for _, a := range m.Attrs {
				c.lmAttrs = append(c.lmAttrs, int32(a))
			}
			c.lmCoefs = append(c.lmCoefs, m.Coefs...)
			if len(m.Names) > 0 {
				c.lmNames[i] = append([]string(nil), m.Names...)
			}
		}
		// Only a node with both children is compiled as interior; a
		// half-linked node (possible in hand-written JSON) canonicalizes
		// to a leaf instead of compiling an unwalkable split.
		if n.Left != nil && n.Right != nil {
			c.splitAttr[i] = int32(n.SplitAttr)
			c.threshold[i] = n.Threshold
			c.left[i] = flatten(n.Left)
			c.right[i] = flatten(n.Right)
		}
		return i
	}
	flatten(t.Root)
	c.lmOff[next] = int32(len(c.lmCoefs))
	// Half-linked subtrees are canonicalized away above, so fewer than
	// countNodes slots may be used; trim to the visited prefix.
	n := int(next)
	c.splitAttr, c.threshold = c.splitAttr[:n], c.threshold[:n]
	c.left, c.right = c.left[:n], c.right[:n]
	c.nodeN, c.sd, c.mean, c.leafID = c.nodeN[:n], c.sd[:n], c.mean[:n], c.leafID[:n]
	c.lmOff, c.lmIntercept = c.lmOff[:n+1], c.lmIntercept[:n]
	c.hasLM, c.lmNames = c.hasLM[:n], c.lmNames[:n]
	c.numLeaves, c.depth = c.scanShape()
	c.buildWalk()
	return c
}

// scanShape derives the leaf count and maximum depth from the flat
// arrays. Children always have larger indices than their parent, so one
// ascending pass computes every node's depth before it is needed.
func (c *CompiledTree) scanShape() (leaves, depth int) {
	if len(c.splitAttr) == 0 {
		return 0, 0
	}
	d := make([]int32, len(c.splitAttr))
	d[0] = 1
	for i := range c.splitAttr {
		if d[i] == 0 {
			continue // unreachable from the root
		}
		if int(d[i]) > depth {
			depth = int(d[i])
		}
		if c.splitAttr[i] < 0 {
			leaves++
			continue
		}
		for _, ch := range [2]int32{c.left[i], c.right[i]} {
			if v := d[i] + 1; v > d[ch] {
				d[ch] = v
			}
		}
	}
	return leaves, depth
}

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

// leafFor descends the packed walk records to the leaf index for a row
// — identical comparisons (<= goes left) to the pointer walk.
func (c *CompiledTree) leafFor(row dataset.Instance) int32 {
	w := c.walk
	n := int32(0)
	for {
		nd := &w[n]
		if nd.attr < 0 {
			return n
		}
		if row[nd.attr] <= nd.thr {
			n = nd.child[0]
		} else {
			n = nd.child[1]
		}
	}
}

// lmPredict evaluates node n's linear model: intercept plus the packed
// coefficient row, accumulated in the same order as linreg.Model.Predict
// so the result is bit-identical.
func (c *CompiledTree) lmPredict(n int32, row dataset.Instance) float64 {
	y := c.lmIntercept[n]
	attrs, coefs := c.lmAttrs, c.lmCoefs
	for j, end := c.lmOff[n], c.lmOff[n+1]; j < end; j++ {
		y += coefs[j] * row[attrs[j]]
	}
	return y
}

// Predict returns the compiled tree's estimate for one instance,
// bit-identical to Tree.Predict: the raw leaf model without smoothing,
// or the ancestor-blended value with it.
func (c *CompiledTree) Predict(row dataset.Instance) float64 {
	if !c.config.Smooth {
		return c.lmPredict(c.leafFor(row), row)
	}
	var pbuf [compiledPathInline]int32
	path := pbuf[:0]
	if c.depth > compiledPathInline {
		path = make([]int32, 0, c.depth)
	}
	return c.predictSmoothed(row, path)
}

// predictSmoothed walks to the leaf recording the path in the caller's
// scratch, then blends ancestor models bottom-up with the exact
// arithmetic of the pointer walk.
func (c *CompiledTree) predictSmoothed(row dataset.Instance, path []int32) float64 {
	w := c.walk
	n := int32(0)
	for {
		path = append(path, n)
		nd := &w[n]
		if nd.attr < 0 {
			break
		}
		if row[nd.attr] <= nd.thr {
			n = nd.child[0]
		} else {
			n = nd.child[1]
		}
	}
	return c.blendPath(row, path)
}

// blendPath evaluates the leaf model at the end of a recorded root-to-
// leaf path and smooths it bottom-up through the ancestors — the shared
// tail of the single and blocked smoothed predictors.
func (c *CompiledTree) blendPath(row dataset.Instance, path []int32) float64 {
	p := c.lmPredict(path[len(path)-1], row)
	k := c.config.SmoothingK
	// Ancestor models are open-coded (the same loop as lmPredict, same
	// accumulation order) to keep the running blend in a register across
	// the bottom-up sweep.
	nodeN := c.nodeN
	lmOff, intercept, attrs, coefs := c.lmOff, c.lmIntercept, c.lmAttrs, c.lmCoefs
	for i := len(path) - 2; i >= 0; i-- {
		node, below := path[i], path[i+1]
		y := intercept[node]
		for j, end := lmOff[node], lmOff[node+1]; j < end; j++ {
			y += coefs[j] * row[attrs[j]]
		}
		nb := float64(nodeN[below])
		p = (nb*p + k*y) / (nb + k)
	}
	return p
}

// batchLanes rows descend the tree at once inside the batch kernel,
// each lane's node cursor held in a register of a hand-unrolled loop. A
// single row's walk is a chain of dependent loads (each node index
// comes from the previous load), so one row at a time leaves the core
// idle on L2/L3 latency; four independent cursors keep four of those
// loads in flight per sweep. The comparisons and per-row arithmetic are
// unchanged — only their interleaving across rows differs — so results
// stay bit-identical to Predict.
const batchLanes = 4

// walk4 descends four rows at once, one level per sweep, and returns
// their leaf indices. A lane that lands early idles on its (cached)
// leaf record until the deepest lane finishes; the termination test
// relies on every leaf having attr < 0, so the AND of the four attrs
// has its sign bit set exactly when all four lanes are done.
func (c *CompiledTree) walk4(r0, r1, r2, r3 dataset.Instance) (int32, int32, int32, int32) {
	w := c.walk
	n0, n1, n2, n3 := int32(0), int32(0), int32(0), int32(0)
	for {
		nd0, nd1, nd2, nd3 := &w[n0], &w[n1], &w[n2], &w[n3]
		a0, a1, a2, a3 := nd0.attr, nd1.attr, nd2.attr, nd3.attr
		if a0&a1&a2&a3 < 0 {
			return n0, n1, n2, n3
		}
		if a0 >= 0 {
			j := 0
			if r0[a0] > nd0.thr {
				j = 1
			}
			n0 = nd0.child[j]
		}
		if a1 >= 0 {
			j := 0
			if r1[a1] > nd1.thr {
				j = 1
			}
			n1 = nd1.child[j]
		}
		if a2 >= 0 {
			j := 0
			if r2[a2] > nd2.thr {
				j = 1
			}
			n2 = nd2.child[j]
		}
		if a3 >= 0 {
			j := 0
			if r3[a3] > nd3.thr {
				j = 1
			}
			n3 = nd3.child[j]
		}
	}
}

// walk8 is walk4 with eight lanes: the unsmoothed kernel is pure walk,
// so it profits from keeping eight dependent load chains in flight even
// though some lane state spills to the (L1-resident) stack.
func (c *CompiledTree) walk8(rows []dataset.Instance, i int) (int32, int32, int32, int32, int32, int32, int32, int32) {
	w := c.walk
	r0, r1, r2, r3 := rows[i], rows[i+1], rows[i+2], rows[i+3]
	r4, r5, r6, r7 := rows[i+4], rows[i+5], rows[i+6], rows[i+7]
	n0, n1, n2, n3 := int32(0), int32(0), int32(0), int32(0)
	n4, n5, n6, n7 := int32(0), int32(0), int32(0), int32(0)
	for {
		nd0, nd1, nd2, nd3 := &w[n0], &w[n1], &w[n2], &w[n3]
		nd4, nd5, nd6, nd7 := &w[n4], &w[n5], &w[n6], &w[n7]
		a0, a1, a2, a3 := nd0.attr, nd1.attr, nd2.attr, nd3.attr
		a4, a5, a6, a7 := nd4.attr, nd5.attr, nd6.attr, nd7.attr
		if a0&a1&a2&a3&a4&a5&a6&a7 < 0 {
			return n0, n1, n2, n3, n4, n5, n6, n7
		}
		if a0 >= 0 {
			j := 0
			if r0[a0] > nd0.thr {
				j = 1
			}
			n0 = nd0.child[j]
		}
		if a1 >= 0 {
			j := 0
			if r1[a1] > nd1.thr {
				j = 1
			}
			n1 = nd1.child[j]
		}
		if a2 >= 0 {
			j := 0
			if r2[a2] > nd2.thr {
				j = 1
			}
			n2 = nd2.child[j]
		}
		if a3 >= 0 {
			j := 0
			if r3[a3] > nd3.thr {
				j = 1
			}
			n3 = nd3.child[j]
		}
		if a4 >= 0 {
			j := 0
			if r4[a4] > nd4.thr {
				j = 1
			}
			n4 = nd4.child[j]
		}
		if a5 >= 0 {
			j := 0
			if r5[a5] > nd5.thr {
				j = 1
			}
			n5 = nd5.child[j]
		}
		if a6 >= 0 {
			j := 0
			if r6[a6] > nd6.thr {
				j = 1
			}
			n6 = nd6.child[j]
		}
		if a7 >= 0 {
			j := 0
			if r7[a7] > nd7.thr {
				j = 1
			}
			n7 = nd7.child[j]
		}
	}
}

// path4 is walk4 recording each lane's root-to-leaf path into
// paths[lane*stride:]; it returns the four path lengths.
func (c *CompiledTree) path4(r0, r1, r2, r3 dataset.Instance, paths []int32, stride int) (int32, int32, int32, int32) {
	w := c.walk
	n0, n1, n2, n3 := int32(0), int32(0), int32(0), int32(0)
	d0, d1, d2, d3 := int32(1), int32(1), int32(1), int32(1)
	paths[0], paths[stride], paths[2*stride], paths[3*stride] = 0, 0, 0, 0
	for {
		nd0, nd1, nd2, nd3 := &w[n0], &w[n1], &w[n2], &w[n3]
		a0, a1, a2, a3 := nd0.attr, nd1.attr, nd2.attr, nd3.attr
		if a0&a1&a2&a3 < 0 {
			return d0, d1, d2, d3
		}
		if a0 >= 0 {
			j := 0
			if r0[a0] > nd0.thr {
				j = 1
			}
			n0 = nd0.child[j]
			paths[d0] = n0
			d0++
		}
		if a1 >= 0 {
			j := 0
			if r1[a1] > nd1.thr {
				j = 1
			}
			n1 = nd1.child[j]
			paths[int32(stride)+d1] = n1
			d1++
		}
		if a2 >= 0 {
			j := 0
			if r2[a2] > nd2.thr {
				j = 1
			}
			n2 = nd2.child[j]
			paths[int32(2*stride)+d2] = n2
			d2++
		}
		if a3 >= 0 {
			j := 0
			if r3[a3] > nd3.thr {
				j = 1
			}
			n3 = nd3.child[j]
			paths[int32(3*stride)+d3] = n3
			d3++
		}
	}
}

// blend4 runs the smoothing blend for four recorded paths with the four
// accumulators interleaved in registers. Within a lane the arithmetic
// is exactly blendPath's bottom-up sequence (bit-identical); across
// lanes the independent chains overlap, so the blend's float divides —
// ~13 cycles of latency each but pipelined — stack up instead of
// serializing.
func (c *CompiledTree) blend4(r0, r1, r2, r3 dataset.Instance, paths []int32, stride int, d0, d1, d2, d3 int32) (float64, float64, float64, float64) {
	p0 := c.lmPredict(paths[d0-1], r0)
	p1 := c.lmPredict(paths[int32(stride)+d1-1], r1)
	p2 := c.lmPredict(paths[int32(2*stride)+d2-1], r2)
	p3 := c.lmPredict(paths[int32(3*stride)+d3-1], r3)
	k := c.config.SmoothingK
	nodeN := c.nodeN
	// The per-ancestor model evaluation is open-coded per lane (the same
	// loop as lmPredict) so the accumulators stay in registers across the
	// sweep instead of spilling around a function call.
	lmOff, intercept, attrs, coefs := c.lmOff, c.lmIntercept, c.lmAttrs, c.lmCoefs
	for i0, i1, i2, i3 := d0-1, d1-1, d2-1, d3-1; i0|i1|i2|i3 > 0; {
		if i0 > 0 {
			node, below := paths[i0-1], paths[i0]
			y := intercept[node]
			for j, end := lmOff[node], lmOff[node+1]; j < end; j++ {
				y += coefs[j] * r0[attrs[j]]
			}
			nb := float64(nodeN[below])
			p0 = (nb*p0 + k*y) / (nb + k)
			i0--
		}
		if i1 > 0 {
			node, below := paths[int32(stride)+i1-1], paths[int32(stride)+i1]
			y := intercept[node]
			for j, end := lmOff[node], lmOff[node+1]; j < end; j++ {
				y += coefs[j] * r1[attrs[j]]
			}
			nb := float64(nodeN[below])
			p1 = (nb*p1 + k*y) / (nb + k)
			i1--
		}
		if i2 > 0 {
			node, below := paths[int32(2*stride)+i2-1], paths[int32(2*stride)+i2]
			y := intercept[node]
			for j, end := lmOff[node], lmOff[node+1]; j < end; j++ {
				y += coefs[j] * r2[attrs[j]]
			}
			nb := float64(nodeN[below])
			p2 = (nb*p2 + k*y) / (nb + k)
			i2--
		}
		if i3 > 0 {
			node, below := paths[int32(3*stride)+i3-1], paths[int32(3*stride)+i3]
			y := intercept[node]
			for j, end := lmOff[node], lmOff[node+1]; j < end; j++ {
				y += coefs[j] * r3[attrs[j]]
			}
			nb := float64(nodeN[below])
			p3 = (nb*p3 + k*y) / (nb + k)
			i3--
		}
	}
	return p0, p1, p2, p3
}

// batchInto is the shared blocked kernel behind PredictInto (add=false)
// and AccumulateInto (add=true): full blocks of batchLanes rows walk
// with their cursors interleaved, the remainder falls back to the
// scalar walk.
func (c *CompiledTree) batchInto(dst []float64, rows []dataset.Instance, add bool) {
	dst = dst[:len(rows)]
	i := 0
	if !c.config.Smooth {
		for ; i+8 <= len(rows); i += 8 {
			n0, n1, n2, n3, n4, n5, n6, n7 := c.walk8(rows, i)
			p0 := c.lmPredict(n0, rows[i])
			p1 := c.lmPredict(n1, rows[i+1])
			p2 := c.lmPredict(n2, rows[i+2])
			p3 := c.lmPredict(n3, rows[i+3])
			p4 := c.lmPredict(n4, rows[i+4])
			p5 := c.lmPredict(n5, rows[i+5])
			p6 := c.lmPredict(n6, rows[i+6])
			p7 := c.lmPredict(n7, rows[i+7])
			if add {
				dst[i], dst[i+1], dst[i+2], dst[i+3] = dst[i]+p0, dst[i+1]+p1, dst[i+2]+p2, dst[i+3]+p3
				dst[i+4], dst[i+5], dst[i+6], dst[i+7] = dst[i+4]+p4, dst[i+5]+p5, dst[i+6]+p6, dst[i+7]+p7
			} else {
				dst[i], dst[i+1], dst[i+2], dst[i+3] = p0, p1, p2, p3
				dst[i+4], dst[i+5], dst[i+6], dst[i+7] = p4, p5, p6, p7
			}
		}
		for ; i < len(rows); i++ {
			p := c.lmPredict(c.leafFor(rows[i]), rows[i])
			if add {
				dst[i] += p
			} else {
				dst[i] = p
			}
		}
		return
	}
	stride := compiledPathInline
	var pbuf [batchLanes * compiledPathInline]int32
	paths := pbuf[:]
	if c.depth > compiledPathInline {
		stride = c.depth
		paths = make([]int32, batchLanes*stride)
	}
	for ; i+batchLanes <= len(rows); i += batchLanes {
		r0, r1, r2, r3 := rows[i], rows[i+1], rows[i+2], rows[i+3]
		d0, d1, d2, d3 := c.path4(r0, r1, r2, r3, paths, stride)
		p0, p1, p2, p3 := c.blend4(r0, r1, r2, r3, paths, stride, d0, d1, d2, d3)
		if add {
			dst[i], dst[i+1], dst[i+2], dst[i+3] = dst[i]+p0, dst[i+1]+p1, dst[i+2]+p2, dst[i+3]+p3
		} else {
			dst[i], dst[i+1], dst[i+2], dst[i+3] = p0, p1, p2, p3
		}
	}
	for ; i < len(rows); i++ {
		p := c.predictSmoothed(rows[i], paths[:0])
		if add {
			dst[i] += p
		} else {
			dst[i] = p
		}
	}
}

// PredictInto is the batch kernel: it fills dst[i] with the prediction
// for rows[i], allocation-free (walk indices and smoothing paths live
// on the stack) and bit-identical to calling Predict per row. dst must
// have at least len(rows) elements. This is what the /v1/predict batch
// endpoint runs; beyond amortizing per-call overhead, the lockstep
// block walk overlaps the rows' dependent node loads (see batchLanes).
func (c *CompiledTree) PredictInto(dst []float64, rows []dataset.Instance) {
	c.batchInto(dst, rows, false)
}

// AccumulateInto adds the prediction for rows[i] onto dst[i] — the
// tree-major primitive behind the compiled ensemble's batch kernel,
// which keeps one member's arrays hot in cache across the whole batch
// instead of touching every member per row.
func (c *CompiledTree) AccumulateInto(dst []float64, rows []dataset.Instance) {
	c.batchInto(dst, rows, true)
}

// Classify routes an instance to its leaf, returning a materialized
// leaf Node (LeafID, N, Mean and a model view over the packed
// coefficients) plus the decision path — the same contract as
// Tree.Classify, so the serving layer's /v1/classify works on compiled
// trees unchanged.
func (c *CompiledTree) Classify(row dataset.Instance) (leaf *Node, path []PathStep) {
	attr, thr := c.splitAttr, c.threshold
	n := int32(0)
	for attr[n] >= 0 {
		a := attr[n]
		path = append(path, PathStep{
			Attr:      int(a),
			Name:      c.attrName(int(a)),
			Threshold: thr[n],
			Above:     row[a] > thr[n],
		})
		if row[a] <= thr[n] {
			n = c.left[n]
		} else {
			n = c.right[n]
		}
	}
	return c.materialize(n), path
}

// materialize builds a standalone leaf Node view of flat node i. The
// model's coefficient slices alias the packed arenas (callers must not
// mutate them); Attrs is converted because linreg uses int indices.
func (c *CompiledTree) materialize(i int32) *Node {
	n := &Node{
		SplitAttr: -1,
		N:         int(c.nodeN[i]),
		SD:        c.sd[i],
		Mean:      c.mean[i],
		LeafID:    int(c.leafID[i]),
	}
	if c.hasLM[i] != 0 {
		off, end := c.lmOff[i], c.lmOff[i+1]
		attrs := make([]int, end-off)
		for j := range attrs {
			attrs[j] = int(c.lmAttrs[off+int32(j)])
		}
		n.Model = &linreg.Model{
			Intercept: c.lmIntercept[i],
			Attrs:     attrs,
			Coefs:     c.lmCoefs[off:end:end],
			Names:     c.lmNames[i],
		}
	}
	return n
}

// Contributions decomposes the unsmoothed leaf prediction into
// per-event CPI shares — the paper's Eq. 4 — with arithmetic identical
// to Tree.Contributions.
func (c *CompiledTree) Contributions(row dataset.Instance) []model.Contribution {
	n := c.leafFor(row)
	pred := c.lmPredict(n, row)
	var out []model.Contribution
	for j, end := c.lmOff[n], c.lmOff[n+1]; j < end; j++ {
		coef := c.lmCoefs[j]
		if coef == 0 {
			continue
		}
		a := int(c.lmAttrs[j])
		rate := row[a]
		cyc := coef * rate
		var frac float64
		if pred != 0 {
			frac = cyc / pred
		}
		out = append(out, model.Contribution{
			Attr: a, Name: c.attrName(a), Coef: coef, Rate: rate, Cycles: cyc, Fraction: frac,
		})
	}
	sortContributions(out)
	return out
}

func (c *CompiledTree) attrName(a int) string {
	if a >= 0 && a < len(c.attrNames) {
		return c.attrNames[a]
	}
	return defaultAttrName(a)
}

// NumLeaves reports the number of leaves (performance classes).
func (c *CompiledTree) NumLeaves() int { return c.numLeaves }

// NumNodes reports the total flat node count.
func (c *CompiledTree) NumNodes() int { return len(c.splitAttr) }

// Depth reports the maximum root-to-leaf node count.
func (c *CompiledTree) Depth() int { return c.depth }

// Config returns the training configuration the tree carries.
func (c *CompiledTree) Config() Config { return c.config }

// Describe matches the source tree's description field for field, so
// registries and /v1/models listings are unchanged by compilation.
func (c *CompiledTree) Describe() model.Description {
	return model.Description{
		Kind:      "m5-model-tree",
		Target:    c.targetName,
		AttrNames: c.attrNames,
		TrainN:    c.trainN,
		NumLeaves: c.numLeaves,
		Trees:     1,
		Machine:   c.machine,
	}
}

// Tree reconstructs the pointer-linked form — the bridge back to the
// JSON persistence, printing and analysis code. The rebuilt tree
// carries everything the persisted format does (ModelAttrs, which only
// exist during training, are not preserved by either form).
func (c *CompiledTree) Tree() *Tree {
	if len(c.splitAttr) == 0 {
		return nil
	}
	arena := make([]Node, len(c.splitAttr))
	for i := range arena {
		n := &arena[i]
		n.SplitAttr = int(c.splitAttr[i])
		n.N = int(c.nodeN[i])
		n.SD = c.sd[i]
		n.Mean = c.mean[i]
		n.LeafID = int(c.leafID[i])
		if n.SplitAttr >= 0 {
			n.SplitName = c.attrName(n.SplitAttr)
			n.Threshold = c.threshold[i]
			n.Left = &arena[c.left[i]]
			n.Right = &arena[c.right[i]]
		}
		if c.hasLM[i] != 0 {
			off, end := c.lmOff[i], c.lmOff[i+1]
			attrs := make([]int, end-off)
			for j := range attrs {
				attrs[j] = int(c.lmAttrs[off+int32(j)])
			}
			n.Model = &linreg.Model{
				Intercept: c.lmIntercept[i],
				Attrs:     attrs,
				Coefs:     append([]float64(nil), c.lmCoefs[off:end]...),
				Names:     append([]string(nil), c.lmNames[i]...),
			}
		}
	}
	return &Tree{
		Root:       &arena[0],
		Config:     c.config,
		TargetName: c.targetName,
		AttrNames:  append([]string(nil), c.attrNames...),
		TrainN:     c.trainN,
		GlobalSD:   c.globalSD,
		Machine:    c.machine,
	}
}

// CompileModel implements model.Compilable: the serving registry calls
// it on registration to switch the hot path to the flat-array form.
func (t *Tree) CompileModel() model.Model { return Compile(t) }
