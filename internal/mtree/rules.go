package mtree

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Rule is one leaf of the tree expressed as an ordered IF-THEN rule: the
// conjunction of the split conditions on the root path, and the leaf's
// linear model as the consequent. Rule lists are the M5-Rules style view
// of a model tree — handy when a flat, greppable form of the classifier is
// easier to consume than the tree drawing.
type Rule struct {
	// LeafID ties the rule back to its LM number.
	LeafID int
	// Conditions are the path tests, in root-to-leaf order.
	Conditions []PathStep
	// Model is the consequent linear model.
	Model fmt.Stringer
	// N and Mean describe the training population of the leaf.
	N    int
	Mean float64

	model interface {
		Predict(dataset.Instance) float64
	}
}

// Matches reports whether an instance satisfies every condition.
func (r Rule) Matches(row dataset.Instance) bool {
	for _, c := range r.Conditions {
		v := row[c.Attr]
		if c.Above {
			if v <= c.Threshold {
				return false
			}
		} else if v > c.Threshold {
			return false
		}
	}
	return true
}

// Predict evaluates the rule's model (unsmoothed).
func (r Rule) Predict(row dataset.Instance) float64 { return r.model.Predict(row) }

// String renders the rule as "IF a > x AND b <= y THEN CPI = ...".
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString("IF ")
	if len(r.Conditions) == 0 {
		b.WriteString("true")
	}
	for i, c := range r.Conditions {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(c.String())
	}
	fmt.Fprintf(&b, " THEN %s  [LM%d, n=%d]", r.Model, r.LeafID, r.N)
	return b.String()
}

// Rules flattens the tree into its ordered rule list (left-to-right leaf
// order). Exactly one rule matches any instance, because the conditions
// partition the input space.
func (t *Tree) Rules() []Rule {
	var rules []Rule
	t.WalkLeaves(func(n *Node, path []PathStep) {
		rules = append(rules, Rule{
			LeafID:     n.LeafID,
			Conditions: append([]PathStep(nil), path...),
			Model:      n.Model,
			N:          n.N,
			Mean:       n.Mean,
			model:      n.Model,
		})
	})
	return rules
}

// RuleFor returns the unique rule matching the instance.
func (t *Tree) RuleFor(row dataset.Instance) Rule {
	leaf, path := t.Classify(row)
	return Rule{
		LeafID:     leaf.LeafID,
		Conditions: path,
		Model:      leaf.Model,
		N:          leaf.N,
		Mean:       leaf.Mean,
		model:      leaf.Model,
	}
}

// RenderRules formats the whole rule list.
func (t *Tree) RenderRules() string {
	var b strings.Builder
	for _, r := range t.Rules() {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}
