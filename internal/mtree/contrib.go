package mtree

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/model"
)

// Tree implements model.Model. The analysis layer and the serving layer
// both consume trees through that interface; the assertion keeps the
// conformance from silently rotting.
var _ model.Model = (*Tree)(nil)

// Contributions decomposes the leaf model's (unsmoothed) prediction for an
// instance into per-event CPI shares, largest first — the paper's Eq. 4
// arithmetic (e.g. 6.69*L1IM/CPI ≈ 20%). The unsmoothed leaf prediction is
// used so that intercept + sum(Cycles) reproduces it exactly.
func (t *Tree) Contributions(row dataset.Instance) []model.Contribution {
	leaf, _ := t.Classify(row)
	pred := leaf.Model.Predict(row)
	var out []model.Contribution
	for i, a := range leaf.Model.Attrs {
		coef := leaf.Model.Coefs[i]
		if coef == 0 {
			continue
		}
		rate := row[a]
		cyc := coef * rate
		var frac float64
		if pred != 0 {
			frac = cyc / pred
		}
		out = append(out, model.Contribution{
			Attr: a, Name: t.attrName(a), Coef: coef, Rate: rate, Cycles: cyc, Fraction: frac,
		})
	}
	sortContributions(out)
	return out
}

// sortContributions orders shares largest-CPI-contribution first; the
// stable sort keeps coefficient order for ties, so the pointer-walk and
// compiled decompositions agree element for element.
func sortContributions(out []model.Contribution) {
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Cycles > out[j].Cycles
	})
}

// Describe implements model.Model.
func (t *Tree) Describe() model.Description {
	return model.Description{
		Kind:      "m5-model-tree",
		Target:    t.TargetName,
		AttrNames: t.AttrNames,
		TrainN:    t.TrainN,
		NumLeaves: t.NumLeaves(),
		Trees:     1,
		Machine:   t.Machine,
	}
}
