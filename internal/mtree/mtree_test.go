package mtree

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/eval"
)

// piecewise builds a dataset with a known two-regime structure:
//
//	x1 <= 0 : y = 1 + 2*x2
//	x1 >  0 : y = 10 - 3*x2
func piecewise(n int, noise float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x1"}, {Name: "x2"}}, 0)
	for i := 0; i < n; i++ {
		x1 := rng.Float64()*2 - 1
		x2 := rng.Float64()*2 - 1
		var y float64
		if x1 <= 0 {
			y = 1 + 2*x2
		} else {
			y = 10 - 3*x2
		}
		d.MustAppend(dataset.Instance{y + noise*rng.NormFloat64(), x1, x2})
	}
	return d
}

func TestBuildEmpty(t *testing.T) {
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	if _, err := Build(d, DefaultConfig()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestRecoversPiecewiseStructure(t *testing.T) {
	d := piecewise(2000, 0.02, 1)
	cfg := DefaultConfig()
	cfg.MinLeaf = 100
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root
	if root.IsLeaf() {
		t.Fatal("tree did not split")
	}
	if tree.AttrNames[root.SplitAttr] != "x1" {
		t.Errorf("root splits on %s, want x1", tree.AttrNames[root.SplitAttr])
	}
	if math.Abs(root.Threshold) > 0.1 {
		t.Errorf("root threshold %v, want ~0", root.Threshold)
	}
	// Pruning should collapse each side to a single linear leaf.
	if got := tree.NumLeaves(); got != 2 {
		t.Errorf("leaves = %d, want 2 (exact piecewise-linear function)", got)
	}
	// Leaf models should recover the per-regime slopes.
	leftLeaf := tree.Root.Left
	x2 := d.AttrIndex("x2")
	if math.Abs(leftLeaf.Model.Coef(x2)-2) > 0.1 {
		t.Errorf("left slope %v, want ~2", leftLeaf.Model.Coef(x2))
	}
	rightLeaf := tree.Root.Right
	if math.Abs(rightLeaf.Model.Coef(x2)+3) > 0.1 {
		t.Errorf("right slope %v, want ~-3", rightLeaf.Model.Coef(x2))
	}
}

func TestPredictionAccuracy(t *testing.T) {
	d := piecewise(3000, 0.05, 2)
	cfg := DefaultConfig()
	cfg.MinLeaf = 100
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := eval.Evaluate(tree, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Correlation < 0.995 {
		t.Errorf("training correlation %v too low", m.Correlation)
	}
	if m.MAE > 0.1 {
		t.Errorf("training MAE %v too high", m.MAE)
	}
}

func TestMinLeafRespected(t *testing.T) {
	d := piecewise(1000, 0.3, 3)
	cfg := DefaultConfig()
	cfg.MinLeaf = 150
	cfg.Prune = false // pruning only merges, never splits below the floor
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree.WalkLeaves(func(n *Node, _ []PathStep) {
		if n.N < cfg.MinLeaf {
			t.Errorf("leaf with %d < %d instances", n.N, cfg.MinLeaf)
		}
	})
}

func TestPruningReducesLeaves(t *testing.T) {
	d := piecewise(2000, 0.05, 4)
	unpruned := DefaultConfig()
	unpruned.MinLeaf = 50
	unpruned.Prune = false
	pruned := unpruned
	pruned.Prune = true
	tu, err := Build(d, unpruned)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := Build(d, pruned)
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumLeaves() > tu.NumLeaves() {
		t.Errorf("pruned tree has %d leaves > unpruned %d", tp.NumLeaves(), tu.NumLeaves())
	}
}

func TestSingleLeafDegenerateData(t *testing.T) {
	// Constant target: no split can reduce SD, so the tree is one leaf
	// predicting the constant.
	d := dataset.MustNew([]dataset.Attribute{{Name: "y"}, {Name: "x"}}, 0)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		d.MustAppend(dataset.Instance{7, rng.NormFloat64()})
	}
	tree, err := Build(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Error("constant target produced splits")
	}
	if got := tree.Predict(dataset.Instance{0, 0.5}); math.Abs(got-7) > 1e-9 {
		t.Errorf("Predict = %v, want 7", got)
	}
}

func TestClassifyPath(t *testing.T) {
	d := piecewise(2000, 0.02, 6)
	cfg := DefaultConfig()
	cfg.MinLeaf = 100
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	leaf, path := tree.Classify(dataset.Instance{0, 0.9, 0})
	if leaf == nil || leaf.LeafID == 0 {
		t.Fatal("classification failed")
	}
	if len(path) == 0 {
		t.Fatal("empty path for non-root leaf")
	}
	// x1 = 0.9 crosses the root split on its high side.
	if path[0].Name != "x1" || !path[0].Above {
		t.Errorf("path[0] = %+v, want x1 high side", path[0])
	}
	// The path must be consistent with re-routing the instance.
	leaf2, _ := tree.Classify(dataset.Instance{0, 0.9, 0})
	if leaf2.LeafID != leaf.LeafID {
		t.Error("classification not deterministic")
	}
}

func TestLeafIDsSequential(t *testing.T) {
	d := piecewise(2000, 0.3, 7)
	cfg := DefaultConfig()
	cfg.MinLeaf = 50
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 1
	tree.WalkLeaves(func(n *Node, _ []PathStep) {
		if n.LeafID != want {
			t.Errorf("leaf ID %d, want %d (left-to-right order)", n.LeafID, want)
		}
		want++
	})
	if got := tree.Leaf(1); got == nil || got.LeafID != 1 {
		t.Error("Leaf(1) lookup failed")
	}
	if tree.Leaf(want) != nil {
		t.Error("Leaf beyond last ID should be nil")
	}
}

func TestLeafPath(t *testing.T) {
	d := piecewise(2000, 0.02, 8)
	cfg := DefaultConfig()
	cfg.MinLeaf = 100
	tree, _ := Build(d, cfg)
	n := tree.NumLeaves()
	for id := 1; id <= n; id++ {
		path := tree.LeafPath(id)
		if len(path) == 0 && n > 1 {
			t.Errorf("leaf %d has empty path", id)
		}
	}
	if tree.LeafPath(n+5) != nil {
		t.Error("path for unknown leaf should be nil")
	}
}

func TestSmoothingBlendsTowardAncestors(t *testing.T) {
	d := piecewise(2000, 0.05, 9)
	cfg := DefaultConfig()
	cfg.MinLeaf = 100
	cfg.Smooth = false
	raw, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Smooth = true
	smooth, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At an instance deep inside one regime, both should agree closely;
	// exactly at the boundary the smoothed tree must be strictly between
	// the two raw leaf predictions (continuity pressure).
	in := dataset.Instance{0, 0.001, 0.5}
	rawP := raw.Predict(in)
	smoothP := smooth.Predict(in)
	rootP := smooth.Root.Model.Predict(in)
	// Smoothed prediction moves from the leaf prediction toward the root
	// model prediction.
	if rawP == smoothP {
		t.Skip("smoothing coincidentally identical; acceptable but untestable here")
	}
	if (smoothP-rawP)*(rootP-rawP) < 0 {
		t.Errorf("smoothing moved away from ancestor: raw %v smooth %v root %v", rawP, smoothP, rootP)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := piecewise(1500, 0.1, 10)
	cfg := DefaultConfig()
	cfg.MinLeaf = 80
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumLeaves() != tree.NumLeaves() || back.TargetName != tree.TargetName {
		t.Error("round trip changed tree shape")
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		in := dataset.Instance{0, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		a, b := tree.Predict(in), back.Predict(in)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("prediction changed after round trip: %v vs %v", a, b)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{}")); err == nil {
		t.Error("rootless JSON accepted")
	}
}

func TestStringRendering(t *testing.T) {
	d := piecewise(2000, 0.02, 12)
	cfg := DefaultConfig()
	cfg.MinLeaf = 100
	tree, _ := Build(d, cfg)
	s := tree.String()
	if !strings.Contains(s, "x1") {
		t.Errorf("rendered tree missing split variable:\n%s", s)
	}
	if !strings.Contains(s, "LM1:") {
		t.Errorf("rendered tree missing leaf models:\n%s", s)
	}
	if !strings.Contains(s, "%") {
		t.Errorf("rendered tree missing leaf population shares:\n%s", s)
	}
	if !strings.Contains(tree.Summary(), "leaves") {
		t.Error("Summary missing leaf count")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Errorf("PaperConfig invalid: %v", err)
	}
	// Smoothing off leaves SmoothingK unconstrained (zero value is legal).
	ok := Config{MinLeaf: 4, SDThresholdFraction: 0.05}
	if err := ok.Validate(); err != nil {
		t.Errorf("unsmoothed zero-K config rejected: %v", err)
	}

	bad := []Config{
		{MinLeaf: -5, SDThresholdFraction: 0.05},
		{MinLeaf: 0, SDThresholdFraction: 0.05},
		{MinLeaf: 4, SDThresholdFraction: -1},
		{MinLeaf: 4, SDThresholdFraction: 0.05, Smooth: true, SmoothingK: -2},
	}
	d := piecewise(100, 0.1, 13)
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d passed Validate: %+v", i, cfg)
		}
		// Build must fail up front with the Validate error, not deep in
		// training.
		if _, err := Build(d, cfg); err == nil {
			t.Errorf("Build accepted invalid config %d: %+v", i, cfg)
		}
	}
}

func TestPaperConfig(t *testing.T) {
	if got := PaperConfig().MinLeaf; got != 430 {
		t.Errorf("PaperConfig MinLeaf = %d, want 430", got)
	}
}

func TestDepth(t *testing.T) {
	d := piecewise(2000, 0.02, 14)
	cfg := DefaultConfig()
	cfg.MinLeaf = 100
	tree, _ := Build(d, cfg)
	if tree.Depth() < 2 {
		t.Errorf("Depth = %d, want >= 2 for a split tree", tree.Depth())
	}
}

// Property: predictions are finite for any in-range instance, smoothed or
// not.
func TestPredictFiniteProperty(t *testing.T) {
	d := piecewise(1000, 0.2, 15)
	cfg := DefaultConfig()
	cfg.MinLeaf = 50
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x1, x2 float64) bool {
		// Linear extrapolation at astronomic magnitudes overflows float64
		// by arithmetic necessity; bound inputs to a generous range far
		// beyond any per-instruction event rate.
		if math.IsNaN(x1) || math.IsNaN(x2) || math.Abs(x1) > 1e6 || math.Abs(x2) > 1e6 {
			return true
		}
		p := tree.Predict(dataset.Instance{0, x1, x2})
		return !math.IsNaN(p) && !math.IsInf(p, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: leaf instance counts sum to the training size on the unpruned
// tree.
func TestLeafCountsSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := piecewise(800, 0.3, seed)
		cfg := DefaultConfig()
		cfg.MinLeaf = 40
		cfg.Prune = false
		tree, err := Build(d, cfg)
		if err != nil {
			return false
		}
		total := 0
		tree.WalkLeaves(func(n *Node, _ []PathStep) { total += n.N })
		return total == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPathStepString(t *testing.T) {
	lo := PathStep{Name: "L2M", Threshold: 0.005}
	hi := PathStep{Name: "L2M", Threshold: 0.005, Above: true}
	if !strings.Contains(lo.String(), "<=") || !strings.Contains(hi.String(), ">") {
		t.Errorf("PathStep rendering wrong: %q / %q", lo, hi)
	}
}
