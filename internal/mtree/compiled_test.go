package mtree_test

// Bit-identity properties of the compiled flat-array evaluator: for
// every generated tree and configuration, Compile(t) must reproduce the
// pointer walk exactly — predictions (smoothed and unsmoothed), batch
// kernel output, classifications, contributions and descriptions — and
// decompile back to a byte-identical persisted tree. "Exactly" is ==,
// not a tolerance: the compiled form replicates the arithmetic order,
// so any divergence is a bug, not rounding.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mtree"
	"repro/internal/proptest"
)

// compileOrDie compiles and fails the test on a nil result.
func compileOrDie(t *testing.T, tree *mtree.Tree) *mtree.CompiledTree {
	t.Helper()
	c := mtree.Compile(tree)
	if c == nil {
		t.Fatal("Compile returned nil for a built tree")
	}
	return c
}

// TestCompiledPredictBitIdentical: compiled prediction equals the
// pointer walk bit for bit, in both smoothing regimes of the same tree.
func TestCompiledPredictBitIdentical(t *testing.T) {
	proptest.Run(t, "compiled-predict", 15, func(t *testing.T, r *proptest.Rand) {
		tree, _ := buildRandom(t, r)
		for _, smooth := range []bool{tree.Config.Smooth, !tree.Config.Smooth} {
			tree.Config.Smooth = smooth
			c := compileOrDie(t, tree)
			for i := 0; i < 30; i++ {
				row := genRow(r)
				want := tree.Predict(row)
				if got := c.Predict(row); got != want {
					t.Fatalf("smooth=%v row %d: compiled %v != tree %v", smooth, i, got, want)
				}
			}
		}
	})
}

// TestCompiledBatchKernel: PredictInto fills dst with exactly the
// per-row predictions, and the kernel allocates nothing.
func TestCompiledBatchKernel(t *testing.T) {
	proptest.Run(t, "compiled-batch", 10, func(t *testing.T, r *proptest.Rand) {
		tree, _ := buildRandom(t, r)
		c := compileOrDie(t, tree)
		rows := make([]dataset.Instance, r.IntBetween(1, 200))
		for i := range rows {
			rows[i] = genRow(r)
		}
		dst := make([]float64, len(rows))
		c.PredictInto(dst, rows)
		for i, row := range rows {
			if want := tree.Predict(row); dst[i] != want {
				t.Fatalf("row %d: kernel %v != tree %v", i, dst[i], want)
			}
		}
		// AccumulateInto adds onto the caller's partial sums — the
		// ensemble kernel's contract.
		acc := make([]float64, len(rows))
		copy(acc, dst)
		c.AccumulateInto(acc, rows)
		for i := range acc {
			if acc[i] != dst[i]+dst[i] {
				t.Fatalf("row %d: accumulate %v != 2*%v", i, acc[i], dst[i])
			}
		}
		if allocs := testing.AllocsPerRun(10, func() {
			c.PredictInto(dst, rows)
		}); allocs != 0 {
			t.Fatalf("PredictInto allocates %v objects per call, want 0", allocs)
		}
	})
}

// TestCompiledClassifyAndContributions: the structural views agree with
// the pointer walk — same leaf, same path, same Eq. 4 decomposition.
func TestCompiledClassifyAndContributions(t *testing.T) {
	proptest.Run(t, "compiled-classify", 10, func(t *testing.T, r *proptest.Rand) {
		tree, _ := buildRandom(t, r)
		c := compileOrDie(t, tree)
		if c.NumLeaves() != tree.NumLeaves() {
			t.Fatalf("NumLeaves %d != %d", c.NumLeaves(), tree.NumLeaves())
		}
		if !reflect.DeepEqual(c.Describe(), tree.Describe()) {
			t.Fatalf("Describe %+v != %+v", c.Describe(), tree.Describe())
		}
		for i := 0; i < 20; i++ {
			row := genRow(r)
			wantLeaf, wantPath := tree.Classify(row)
			leaf, path := c.Classify(row)
			if leaf.LeafID != wantLeaf.LeafID || leaf.N != wantLeaf.N || leaf.Mean != wantLeaf.Mean {
				t.Fatalf("row %d: leaf (%d,%d,%v) != (%d,%d,%v)",
					i, leaf.LeafID, leaf.N, leaf.Mean, wantLeaf.LeafID, wantLeaf.N, wantLeaf.Mean)
			}
			if leaf.Model.Predict(row) != wantLeaf.Model.Predict(row) {
				t.Fatalf("row %d: leaf model predictions differ", i)
			}
			if !reflect.DeepEqual(path, wantPath) {
				t.Fatalf("row %d: path %+v != %+v", i, path, wantPath)
			}
			if !reflect.DeepEqual(c.Contributions(row), tree.Contributions(row)) {
				t.Fatalf("row %d: contributions differ", i)
			}
		}
	})
}

// TestCompiledDecompile: Tree() reconstructs a pointer tree whose
// persisted bytes match the original's exactly — compilation loses
// nothing the JSON format carries.
func TestCompiledDecompile(t *testing.T) {
	proptest.Run(t, "compiled-decompile", 10, func(t *testing.T, r *proptest.Rand) {
		tree, _ := buildRandom(t, r)
		var orig bytes.Buffer
		if err := tree.WriteJSON(&orig); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		var back bytes.Buffer
		if err := compileOrDie(t, tree).Tree().WriteJSON(&back); err != nil {
			t.Fatalf("WriteJSON(decompiled): %v", err)
		}
		if !bytes.Equal(orig.Bytes(), back.Bytes()) {
			t.Fatal("compile -> decompile -> persist is not byte-identical to the original")
		}
	})
}
