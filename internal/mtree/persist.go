package mtree

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/linreg"
)

// The JSON persistence layer lets cmd/train save a tree that cmd/analyze
// and cmd/serve load later, mirroring the paper's train-once /
// analyze-many workflow.

// SchemaVersion is the current persisted-tree format version. Files
// written before versioning was introduced carry no schema_version field
// and decode as version 0, which remains readable; files from a future
// format are rejected with a clear error instead of being misparsed.
const SchemaVersion = 1

type treeJSON struct {
	SchemaVersion int       `json:"schema_version"`
	Config        Config    `json:"config"`
	TargetName    string    `json:"target"`
	AttrNames     []string  `json:"attrs"`
	TrainN        int       `json:"train_n"`
	GlobalSD      float64   `json:"global_sd"`
	Machine       string    `json:"machine,omitempty"`
	Root          *nodeJSON `json:"root"`
}

type nodeJSON struct {
	SplitAttr int        `json:"split_attr"`
	Threshold float64    `json:"threshold,omitempty"`
	Left      *nodeJSON  `json:"left,omitempty"`
	Right     *nodeJSON  `json:"right,omitempty"`
	Model     *modelJSON `json:"model"`
	N         int        `json:"n"`
	SD        float64    `json:"sd"`
	Mean      float64    `json:"mean"`
	LeafID    int        `json:"leaf_id,omitempty"`
}

type modelJSON struct {
	Intercept float64   `json:"intercept"`
	Attrs     []int     `json:"attrs,omitempty"`
	Coefs     []float64 `json:"coefs,omitempty"`
	Names     []string  `json:"names,omitempty"`
}

// WriteJSON serializes the tree.
func (t *Tree) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(toTreeJSON(t)); err != nil {
		return fmt.Errorf("mtree: encoding tree: %w", err)
	}
	return nil
}

// ReadJSON deserializes a tree written by WriteJSON.
func ReadJSON(r io.Reader) (*Tree, error) {
	var tj treeJSON
	if err := json.NewDecoder(r).Decode(&tj); err != nil {
		return nil, fmt.Errorf("mtree: decoding tree: %w", err)
	}
	// Version 0 is the pre-versioning format (no schema_version field);
	// its payload is identical, so it stays loadable forever.
	if tj.SchemaVersion < 0 || tj.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("mtree: persisted tree has schema_version %d; this build reads versions 0..%d",
			tj.SchemaVersion, SchemaVersion)
	}
	if tj.Root == nil {
		return nil, fmt.Errorf("mtree: decoded tree has no root")
	}
	t := &Tree{
		Config:     tj.Config,
		TargetName: tj.TargetName,
		AttrNames:  tj.AttrNames,
		TrainN:     tj.TrainN,
		GlobalSD:   tj.GlobalSD,
		Machine:    tj.Machine,
		Root:       fromNodeJSON(tj.Root),
	}
	return t, nil
}

func toTreeJSON(t *Tree) *treeJSON {
	return &treeJSON{
		SchemaVersion: SchemaVersion,
		Config:        t.Config,
		TargetName:    t.TargetName,
		AttrNames:     t.AttrNames,
		TrainN:        t.TrainN,
		GlobalSD:      t.GlobalSD,
		Machine:       t.Machine,
		Root:          toNodeJSON(t.Root),
	}
}

func toNodeJSON(n *Node) *nodeJSON {
	if n == nil {
		return nil
	}
	nj := &nodeJSON{
		SplitAttr: n.SplitAttr,
		Threshold: n.Threshold,
		N:         n.N,
		SD:        n.SD,
		Mean:      n.Mean,
		LeafID:    n.LeafID,
		Left:      toNodeJSON(n.Left),
		Right:     toNodeJSON(n.Right),
	}
	if n.Model != nil {
		nj.Model = &modelJSON{
			Intercept: n.Model.Intercept,
			Attrs:     n.Model.Attrs,
			Coefs:     n.Model.Coefs,
			Names:     n.Model.Names,
		}
	}
	return nj
}

func fromNodeJSON(nj *nodeJSON) *Node {
	if nj == nil {
		return nil
	}
	n := &Node{
		SplitAttr: nj.SplitAttr,
		Threshold: nj.Threshold,
		N:         nj.N,
		SD:        nj.SD,
		Mean:      nj.Mean,
		LeafID:    nj.LeafID,
		Left:      fromNodeJSON(nj.Left),
		Right:     fromNodeJSON(nj.Right),
	}
	if nj.Model != nil {
		n.Model = &linreg.Model{
			Intercept: nj.Model.Intercept,
			Attrs:     nj.Model.Attrs,
			Coefs:     nj.Model.Coefs,
			Names:     nj.Model.Names,
		}
	}
	return n
}
