package mtree_test

// Micro-benchmarks for the prediction hot path: the pointer walk vs the
// compiled flat-array evaluator, single-row and batched, smoothed and
// unsmoothed, on trees large enough that node layout dominates (a deep
// tree built with a small MinLeaf). The compiled batch kernel must
// report 0 allocs/op; `make bench-predict` snapshots these numbers next
// to the serving and simulator benchmarks.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/mtree"
	"repro/internal/proptest"
)

// benchData generates a dataset whose target is genuinely nonlinear in
// every attribute (products of sines plus step terms), so the learner
// keeps splitting all the way down to MinLeaf instead of stopping at
// the SD threshold — production-tree sizes, not toy ones.
func benchData(rows, attrs int) *dataset.Dataset {
	cols := make([]dataset.Attribute, attrs+1)
	cols[0] = dataset.Attribute{Name: "CPI"}
	for i := 1; i <= attrs; i++ {
		cols[i] = dataset.Attribute{Name: fmt.Sprintf("E%d", i)}
	}
	d := dataset.MustNew(cols, 0)
	r := proptest.NewRand(proptest.CaseSeed("bench-predict-data", 0))
	for i := 0; i < rows; i++ {
		row := make(dataset.Instance, attrs+1)
		y := 1.0
		for j := 1; j <= attrs; j++ {
			row[j] = r.Float64()
			y += math.Sin(7 * row[j] * float64(j))
			if row[j] > 0.5 {
				y += 0.3 * float64(j)
			}
		}
		row[0] = y
		d.MustAppend(row)
	}
	return d
}

// benchRows picks a power-of-two number of probe rows so the single-row
// benchmarks can cycle through them with a mask instead of a modulo
// (an integer divide would dilute both sides of the comparison).
func benchRows(d *dataset.Dataset, n int) []dataset.Instance {
	rows := make([]dataset.Instance, n)
	for i := range rows {
		rows[i] = d.Row(i % d.Len())
	}
	return rows
}

// benchTree builds a production-scale tree over a compact event-counter
// set (six predictors, the shape of the paper's key-event CPI models):
// ~24k nodes, so the pointer form's scattered Node+Model allocations
// total ~8MB — well past L2 — while the compiled walk records stay
// L2-resident. Smoothing on: the expensive, representative
// configuration.
func benchTree(b *testing.B) (*mtree.Tree, []dataset.Instance) {
	b.Helper()
	d := benchData(60000, 6)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 4
	cfg.Prune = false
	cfg.SDThresholdFraction = 0.0005
	tree, err := mtree.Build(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return tree, benchRows(d, 4096)
}

// predictBench runs the four-way comparison (pointer/compiled ×
// single/batch) for one tree configuration.
func predictBench(b *testing.B, tree *mtree.Tree, rows []dataset.Instance) {
	b.Helper()
	c := mtree.Compile(tree)
	mask := len(rows) - 1
	b.Run("pointer-single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree.Predict(rows[i&mask])
		}
	})
	b.Run("compiled-single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Predict(rows[i&mask])
		}
	})
	dst := make([]float64, len(rows))
	b.Run("pointer-batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, row := range rows {
				dst[j] = tree.Predict(row)
			}
		}
		b.ReportMetric(float64(b.N*len(rows))/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("compiled-batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.PredictInto(dst, rows)
		}
		b.ReportMetric(float64(b.N*len(rows))/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkPredictCompiled compares the pointer walk, the compiled
// walk, and the compiled batch kernel in both smoothing regimes. The
// smoothed rows are bounded below by the shared blend arithmetic (the
// float work is bit-identical by design, so only walk and model-access
// costs can differ); the unsmoothed rows isolate the walk itself, which
// is where the flat layout and the interleaved batch lanes pay off.
func BenchmarkPredictCompiled(b *testing.B) {
	tree, rows := benchTree(b)
	b.Logf("tree: %d leaves, depth %d", tree.NumLeaves(), tree.Depth())

	b.Run("smoothed", func(b *testing.B) {
		predictBench(b, tree, rows)
	})
	unsmoothed := *tree
	unsmoothed.Config.Smooth = false
	b.Run("unsmoothed", func(b *testing.B) {
		predictBench(b, &unsmoothed, rows)
	})
}

// BenchmarkPredictCompiledEnsemble is the batch comparison for a bagged
// ensemble of production-scale trees. The pointer form walks every
// member per row, cycling ~10MB of scattered nodes through the cache
// for each instance; the compiled tree-major kernel runs one member
// over the whole batch before moving on, keeping that member's arrays
// cache-resident.
func BenchmarkPredictCompiledEnsemble(b *testing.B) {
	d := benchData(20000, 8)
	cfg := mtree.DefaultConfig()
	cfg.MinLeaf = 8
	cfg.Prune = false
	cfg.SDThresholdFraction = 0.001
	bag, err := ensemble.Train(d, ensemble.Config{Trees: 8, Tree: cfg, SampleFraction: 1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	c := ensemble.CompileBagger(bag)
	rows := benchRows(d, 2048)
	dst := make([]float64, len(rows))

	b.Run("pointer-batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, row := range rows {
				dst[j] = bag.Predict(row)
			}
		}
		b.ReportMetric(float64(b.N*len(rows))/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("compiled-batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.PredictInto(dst, rows)
		}
		b.ReportMetric(float64(b.N*len(rows))/b.Elapsed().Seconds(), "rows/s")
	})
}
