package mtree

import (
	"bytes"
	"testing"
)

// TestMachineTagSurvivesPersistence: the machine provenance tag must
// ride through every representation a tree can take — Describe, the
// compiled form and its decompilation, the JSON document and the binary
// format — or a served model would silently lose the answer to "which
// machine was this trained on?".
func TestMachineTagSurvivesPersistence(t *testing.T) {
	d := piecewise(1200, 0.1, 5)
	cfg := DefaultConfig()
	cfg.MinLeaf = 80
	tree, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree.Machine = "nehalem"

	if got := tree.Describe().Machine; got != "nehalem" {
		t.Errorf("Describe().Machine = %q, want nehalem", got)
	}

	compiled := Compile(tree)
	if got := compiled.Describe().Machine; got != "nehalem" {
		t.Errorf("compiled Describe().Machine = %q, want nehalem", got)
	}
	if got := compiled.Tree().Machine; got != "nehalem" {
		t.Errorf("decompiled Machine = %q, want nehalem", got)
	}

	var js bytes.Buffer
	if err := tree.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSON(&js)
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.Machine != "nehalem" {
		t.Errorf("JSON round trip Machine = %q, want nehalem", fromJSON.Machine)
	}

	var bin bytes.Buffer
	if err := compiled.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(bin.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := fromBin.Describe().Machine; got != "nehalem" {
		t.Errorf("binary round trip Machine = %q, want nehalem", got)
	}

	// An untagged tree must stay untagged (and keep the omitempty JSON).
	tree.Machine = ""
	var plain bytes.Buffer
	if err := tree.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain.Bytes(), []byte(`"machine"`)) {
		t.Error("untagged tree serialized a machine field")
	}
}
