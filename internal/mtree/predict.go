package mtree

import (
	"repro/internal/dataset"
)

// Predict returns the tree's estimate of the target for one instance. With
// smoothing enabled the raw leaf prediction is blended with the prediction
// of every ancestor model on the way back to the root:
//
//	p' = (n*p_below + k*p_node) / (n + k)
//
// where n is the number of training instances at the lower node and k is
// the smoothing constant (15 in M5). Smoothing compensates for the sharp
// discontinuities between adjacent leaf models.
func (t *Tree) Predict(row dataset.Instance) float64 {
	if !t.Config.Smooth {
		// Unsmoothed prediction needs no path at all: walk straight to
		// the leaf and evaluate its model, allocation-free.
		n := t.Root
		for !n.IsLeaf() {
			if row[n.SplitAttr] <= n.Threshold {
				n = n.Left
			} else {
				n = n.Right
			}
		}
		return n.Model.Predict(row)
	}
	// Smoothing blends ancestor models bottom-up, so the path is needed
	// — but it lives in a stack buffer instead of a per-call heap slice
	// (the compiled evaluator uses the same trick); only a tree deeper
	// than the buffer falls back to one append-driven allocation.
	var pbuf [predictPathInline]*Node
	path := pbuf[:0]
	n := t.Root
	for {
		path = append(path, n)
		if n.IsLeaf() {
			break
		}
		if row[n.SplitAttr] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	p := n.Model.Predict(row)
	k := t.Config.SmoothingK
	for i := len(path) - 2; i >= 0; i-- {
		node := path[i]
		below := path[i+1]
		p = (float64(below.N)*p + k*node.Model.Predict(row)) / (float64(below.N) + k)
	}
	return p
}

// predictPathInline is the stack capacity of Predict's smoothing path.
const predictPathInline = 64

// pathTo returns the nodes visited from root to leaf for an instance.
func (t *Tree) pathTo(row dataset.Instance) []*Node {
	path := make([]*Node, 0, 8)
	n := t.Root
	for {
		path = append(path, n)
		if n.IsLeaf() {
			return path
		}
		if row[n.SplitAttr] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
}

// Classify routes an instance to its leaf and returns the leaf together
// with the decision path, the inputs to the paper's performance analysis:
// the leaf's linear model answers "how much", and the path's high-side
// split variables flag implicit performance limiters.
func (t *Tree) Classify(row dataset.Instance) (leaf *Node, path []PathStep) {
	nodes := t.pathTo(row)
	leaf = nodes[len(nodes)-1]
	path = make([]PathStep, 0, len(nodes)-1)
	for i := 0; i < len(nodes)-1; i++ {
		n := nodes[i]
		path = append(path, PathStep{
			Attr:      n.SplitAttr,
			Name:      t.attrName(n.SplitAttr),
			Threshold: n.Threshold,
			Above:     row[n.SplitAttr] > n.Threshold,
		})
	}
	return leaf, path
}

// Leaf returns the leaf with the given 1-based LeafID, or nil.
func (t *Tree) Leaf(id int) *Node {
	var found *Node
	t.WalkLeaves(func(n *Node, _ []PathStep) {
		if n.LeafID == id {
			found = n
		}
	})
	return found
}

// LeafPath returns the root path of the leaf with the given ID, or nil.
func (t *Tree) LeafPath(id int) []PathStep {
	var found []PathStep
	t.WalkLeaves(func(n *Node, path []PathStep) {
		if n.LeafID == id {
			found = append([]PathStep(nil), path...)
		}
	})
	return found
}
