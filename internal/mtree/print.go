package mtree

import (
	"fmt"
	"strings"
)

// String renders the tree in Weka's M5' style, with leaf population
// percentages in parentheses as in the paper's Figure 2, followed by the
// leaf models:
//
//	L2M <= 0.000815 :
//	|   DtlbLdM <= 0.000264 : LM1 (31.4%)
//	|   DtlbLdM >  0.000264 : LM2 (12.0%)
//	L2M >  0.000815 : LM3 (56.6%)
//
//	LM1: CPI = 0.52 + 6.69*L1IM + ...
func (t *Tree) String() string {
	var b strings.Builder
	t.writeNode(&b, t.Root, 0)
	b.WriteString("\n")
	t.WalkLeaves(func(n *Node, _ []PathStep) {
		fmt.Fprintf(&b, "LM%d: %s = %s\n", n.LeafID, t.TargetName, n.Model)
	})
	return b.String()
}

func (t *Tree) writeNode(b *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("|   ", depth)
	if n.IsLeaf() {
		// Rendered inline by the parent; a root-only tree reaches here.
		fmt.Fprintf(b, "%sLM%d (%s)\n", indent, n.LeafID, t.leafShare(n))
		return
	}
	t.writeBranch(b, n, n.Left, depth, "<=")
	t.writeBranch(b, n, n.Right, depth, "> ")
}

func (t *Tree) writeBranch(b *strings.Builder, parent, child *Node, depth int, op string) {
	indent := strings.Repeat("|   ", depth)
	cond := fmt.Sprintf("%s%s %s %.6g :", indent, t.attrName(parent.SplitAttr), op, parent.Threshold)
	if child.IsLeaf() {
		fmt.Fprintf(b, "%s LM%d (%s)\n", cond, child.LeafID, t.leafShare(child))
		return
	}
	fmt.Fprintf(b, "%s\n", cond)
	t.writeBranch(b, child, child.Left, depth+1, "<=")
	t.writeBranch(b, child, child.Right, depth+1, "> ")
}

func (t *Tree) leafShare(n *Node) string {
	if t.TrainN == 0 {
		return "?"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n.N)/float64(t.TrainN))
}

// Summary returns a one-line description of the tree shape.
func (t *Tree) Summary() string {
	return fmt.Sprintf("M5' tree: %d leaves, depth %d, trained on %d instances (target %s)",
		t.NumLeaves(), t.Depth(), t.TrainN, t.TargetName)
}
