package mtree_test

// Property and metamorphic tests for the M5' learner: the Eq. 4
// contribution arithmetic, structural invariants of built trees, the
// pruning guarantees, the smoothing-off identity, and byte-exact
// persistence across schema versions — all over generated datasets and
// configurations rather than one fixture.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/linreg"
	"repro/internal/mtree"
	"repro/internal/proptest"
)

// buildRandom trains a tree on a generated dataset with a generated
// configuration.
func buildRandom(t *testing.T, r *proptest.Rand) (*mtree.Tree, *dataset.Dataset) {
	t.Helper()
	d := proptest.PerfDataset(r, r.IntBetween(80, 400))
	tree, err := mtree.Build(d, proptest.TreeConfig(r))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree, d
}

// genRow produces a prediction input, mostly in-distribution with
// occasional out-of-range values to exercise extrapolation.
func genRow(r *proptest.Rand) dataset.Instance {
	row := dataset.Instance{0, r.Range(0, 0.01), r.Range(0, 0.008), r.Range(0, 0.003)}
	if r.Bool(0.15) {
		row[1+r.Intn(3)] = r.Range(-0.01, 0.05)
	}
	return row
}

// TestContributionsSumToPrediction: the Eq. 4 decomposition is exact —
// each term is literally coef*rate, and intercept plus the terms
// reproduces the unsmoothed leaf prediction (up to summation order).
func TestContributionsSumToPrediction(t *testing.T) {
	proptest.Run(t, "eq4-sums", 15, func(t *testing.T, r *proptest.Rand) {
		tree, _ := buildRandom(t, r)
		for i := 0; i < 25; i++ {
			row := genRow(r)
			leaf, _ := tree.Classify(row)
			pred := leaf.Model.Predict(row)
			sum := leaf.Model.Intercept
			for _, c := range tree.Contributions(row) {
				if c.Cycles != c.Coef*c.Rate {
					t.Fatalf("row %d: Cycles %v != Coef %v * Rate %v", i, c.Cycles, c.Coef, c.Rate)
				}
				if c.Rate != row[c.Attr] {
					t.Fatalf("row %d: Rate %v != row[%d] = %v", i, c.Rate, c.Attr, row[c.Attr])
				}
				if pred != 0 && math.Abs(c.Fraction-c.Cycles/pred) > 1e-12 {
					t.Fatalf("row %d: Fraction %v != Cycles/pred %v", i, c.Fraction, c.Cycles/pred)
				}
				sum += c.Cycles
			}
			if math.Abs(sum-pred) > 1e-9*math.Max(1, math.Abs(pred)) {
				t.Fatalf("row %d: intercept+contributions %v != leaf prediction %v", i, sum, pred)
			}
		}
	})
}

// TestStructuralInvariants: every built tree is well-formed — interior
// nodes have two children and a real split, leaves are numbered 1..k in
// left-to-right order, Classify's path matches the row, and with
// smoothing off Predict is exactly the leaf model's output.
func TestStructuralInvariants(t *testing.T) {
	proptest.Run(t, "tree-structure", 15, func(t *testing.T, r *proptest.Rand) {
		tree, _ := buildRandom(t, r)

		wantID := 0
		tree.WalkLeaves(func(leaf *mtree.Node, _ []mtree.PathStep) {
			wantID++
			if leaf.LeafID != wantID {
				t.Fatalf("leaf numbered %d at left-to-right position %d", leaf.LeafID, wantID)
			}
			if leaf.SplitAttr != -1 || leaf.Left != nil || leaf.Right != nil {
				t.Fatalf("leaf %d carries split state", leaf.LeafID)
			}
			if leaf.Model == nil {
				t.Fatalf("leaf %d has no model", leaf.LeafID)
			}
			if leaf.N < 1 {
				t.Fatalf("leaf %d trained on %d instances", leaf.LeafID, leaf.N)
			}
		})
		if wantID != tree.NumLeaves() {
			t.Fatalf("WalkLeaves saw %d leaves, NumLeaves says %d", wantID, tree.NumLeaves())
		}
		if tree.Depth() < 1 || (tree.NumLeaves() == 1) != tree.Root.IsLeaf() {
			t.Fatalf("depth %d / leaves %d inconsistent", tree.Depth(), tree.NumLeaves())
		}

		for i := 0; i < 20; i++ {
			row := genRow(r)
			leaf, path := tree.Classify(row)
			if got := tree.Leaf(leaf.LeafID); got != leaf {
				t.Fatalf("Leaf(%d) returned a different node", leaf.LeafID)
			}
			for _, step := range path {
				if step.Above != (row[step.Attr] > step.Threshold) {
					t.Fatalf("path step %+v contradicts row value %v", step, row[step.Attr])
				}
			}
			if !tree.Config.Smooth {
				if got := tree.Predict(row); got != leaf.Model.Predict(row) {
					t.Fatalf("smoothing off but Predict %v != leaf model %v", got, leaf.Model.Predict(row))
				}
			}
			if p := tree.Predict(row); math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("Predict returned %v", p)
			}
		}
	})
}

// subtreeCorrectedError recomputes the complexity-corrected training
// error the pruner optimizes: leaves score their fitted model, interior
// nodes take the instance-weighted average of their children on the
// routed data. fitModels stores exactly the models pruneNode evaluated,
// so this reproduces the pruner's objective from public API alone.
func subtreeCorrectedError(n *mtree.Node, d *dataset.Dataset) float64 {
	if n.IsLeaf() || d.Len() == 0 {
		return linreg.CorrectedError(n.Model, d)
	}
	left, right := d.Split(n.SplitAttr, n.Threshold)
	if left.Len() == 0 || right.Len() == 0 {
		return linreg.CorrectedError(n.Model, d)
	}
	le := subtreeCorrectedError(n.Left, left)
	re := subtreeCorrectedError(n.Right, right)
	return (float64(left.Len())*le + float64(right.Len())*re) / float64(d.Len())
}

// TestPruningMonotone: pruning can only shrink the tree, and the pruned
// tree's complexity-corrected training error never exceeds the unpruned
// tree's — the pruner takes the min of keep-vs-collapse at every node.
func TestPruningMonotone(t *testing.T) {
	proptest.Run(t, "pruning-monotone", 12, func(t *testing.T, r *proptest.Rand) {
		d := proptest.PerfDataset(r, r.IntBetween(100, 400))
		cfg := proptest.TreeConfig(r)

		cfg.Prune = false
		unpruned, err := mtree.Build(d, cfg)
		if err != nil {
			t.Fatalf("Build unpruned: %v", err)
		}
		cfg.Prune = true
		pruned, err := mtree.Build(d, cfg)
		if err != nil {
			t.Fatalf("Build pruned: %v", err)
		}

		if pruned.NumLeaves() > unpruned.NumLeaves() {
			t.Fatalf("pruning grew the tree: %d -> %d leaves", unpruned.NumLeaves(), pruned.NumLeaves())
		}
		if pruned.Depth() > unpruned.Depth() {
			t.Fatalf("pruning deepened the tree: %d -> %d", unpruned.Depth(), pruned.Depth())
		}
		eu := subtreeCorrectedError(unpruned.Root, d)
		ep := subtreeCorrectedError(pruned.Root, d)
		if ep > eu*(1+1e-12) {
			t.Fatalf("pruning raised corrected training error %v -> %v", eu, ep)
		}
	})
}

// TestPersistRoundTrip: write→read→write is a byte-identical fixed
// point; the same file with schema_version 0 (the pre-versioning format)
// loads to the same tree; a future version is rejected.
func TestPersistRoundTrip(t *testing.T) {
	proptest.Run(t, "persist-roundtrip", 12, func(t *testing.T, r *proptest.Rand) {
		tree, _ := buildRandom(t, r)

		var v1 bytes.Buffer
		if err := tree.WriteJSON(&v1); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		loaded, err := mtree.ReadJSON(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatalf("ReadJSON: %v", err)
		}
		var v1Again bytes.Buffer
		if err := loaded.WriteJSON(&v1Again); err != nil {
			t.Fatalf("WriteJSON after load: %v", err)
		}
		if !bytes.Equal(v1.Bytes(), v1Again.Bytes()) {
			t.Fatal("persist -> load -> persist is not byte-identical")
		}

		// The v0 (pre-versioning) payload is identical apart from the
		// version field; loading it must reproduce the same v1 bytes.
		marker := "\"schema_version\": 1"
		if n := strings.Count(v1.String(), marker); n != 1 {
			t.Fatalf("expected exactly one version marker, found %d", n)
		}
		v0 := strings.Replace(v1.String(), marker, "\"schema_version\": 0", 1)
		fromV0, err := mtree.ReadJSON(strings.NewReader(v0))
		if err != nil {
			t.Fatalf("ReadJSON(v0): %v", err)
		}
		var upgraded bytes.Buffer
		if err := fromV0.WriteJSON(&upgraded); err != nil {
			t.Fatalf("WriteJSON(v0-loaded): %v", err)
		}
		if !bytes.Equal(v1.Bytes(), upgraded.Bytes()) {
			t.Fatal("v0 file did not upgrade to byte-identical v1 output")
		}

		future := strings.Replace(v1.String(), marker,
			"\"schema_version\": 99", 1)
		if _, err := mtree.ReadJSON(strings.NewReader(future)); err == nil {
			t.Fatal("future schema version was accepted")
		}

		// Loaded trees predict identically to the original.
		for i := 0; i < 10; i++ {
			row := genRow(r)
			if tree.Predict(row) != loaded.Predict(row) {
				t.Fatalf("loaded tree diverges on row %d", i)
			}
		}
	})
}

// TestBuildDeterministic: the same dataset and configuration always
// produce the same persisted bytes, regardless of the Jobs knob.
func TestBuildDeterministic(t *testing.T) {
	proptest.Run(t, "build-deterministic", 8, func(t *testing.T, r *proptest.Rand) {
		d := proptest.PerfDataset(r, r.IntBetween(100, 300))
		cfg := proptest.TreeConfig(r)
		persist := func(jobs int) []byte {
			cfg.Jobs = jobs
			tree, err := mtree.Build(d, cfg)
			if err != nil {
				t.Fatalf("Build(jobs=%d): %v", jobs, err)
			}
			var buf bytes.Buffer
			if err := tree.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		serial := persist(1)
		if !bytes.Equal(serial, persist(4)) {
			t.Fatal("tree differs between Jobs=1 and Jobs=4")
		}
		if !bytes.Equal(serial, persist(1)) {
			t.Fatal("tree differs between two identical builds")
		}
	})
}
