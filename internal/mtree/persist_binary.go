package mtree

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/binfmt"
)

// Binary persistence for trees: the flat CompiledTree arrays written as
// raw little-endian sections behind the binfmt container. Loading is
// one read plus direct slice construction — on a little-endian host the
// numeric sections alias the file buffer — so a serve replica brings up
// a large registry in milliseconds instead of re-parsing JSON node
// graphs. JSON stays the interoperable format; binary is the serving
// fast path. Both round-trip to the same tree: WriteBinary followed by
// ReadBinary followed by Tree().WriteJSON reproduces WriteJSON's bytes.

// Binary section ids of the tree payload (container kind
// binfmt.KindTree). Values are part of the on-disk format; never reuse
// or renumber, only append.
const (
	secTreeMeta    = 1  // JSON metadata (config, schema, shape)
	secSplitAttr   = 2  // int32 per node, -1 for leaves
	secThreshold   = 3  // float64 per node
	secLeft        = 4  // int32 per node
	secRight       = 5  // int32 per node
	secNodeN       = 6  // int64 per node
	secSD          = 7  // float64 per node
	secMean        = 8  // float64 per node
	secLeafID      = 9  // int32 per node
	secLMOff       = 10 // int32 per node + 1 (row-major prefix offsets)
	secLMIntercept = 11 // float64 per node
	secLMAttrs     = 12 // int32 per coefficient
	secLMCoefs     = 13 // float64 per coefficient
	secHasLM       = 14 // uint8 per node
	secLMNames     = 15 // packed strings (see names codec below)
)

// treeBinMeta is the JSON metadata section — everything that is not a
// bulk numeric array.
type treeBinMeta struct {
	SchemaVersion int      `json:"schema_version"`
	Config        Config   `json:"config"`
	TargetName    string   `json:"target"`
	AttrNames     []string `json:"attrs"`
	TrainN        int      `json:"train_n"`
	GlobalSD      float64  `json:"global_sd"`
	Machine       string   `json:"machine,omitempty"`
	Nodes         int      `json:"nodes"`
}

// WriteBinary persists the compiled tree in the binary model format.
func (c *CompiledTree) WriteBinary(w io.Writer) error {
	bw := binfmt.NewWriter(binfmt.KindTree)
	if err := c.addSections(bw); err != nil {
		return err
	}
	if _, err := bw.WriteTo(w); err != nil {
		return fmt.Errorf("mtree: writing binary tree: %w", err)
	}
	return nil
}

// addSections registers the tree's sections on a container writer;
// shared with the ensemble writer, which nests tree containers.
func (c *CompiledTree) addSections(bw *binfmt.Writer) error {
	meta, err := json.Marshal(treeBinMeta{
		SchemaVersion: SchemaVersion,
		Config:        c.config,
		TargetName:    c.targetName,
		AttrNames:     c.attrNames,
		TrainN:        c.trainN,
		GlobalSD:      c.globalSD,
		Machine:       c.machine,
		Nodes:         len(c.splitAttr),
	})
	if err != nil {
		return fmt.Errorf("mtree: encoding binary tree metadata: %w", err)
	}
	bw.Bytes(secTreeMeta, meta)
	bw.I32(secSplitAttr, c.splitAttr)
	bw.F64(secThreshold, c.threshold)
	bw.I32(secLeft, c.left)
	bw.I32(secRight, c.right)
	bw.I64(secNodeN, c.nodeN)
	bw.F64(secSD, c.sd)
	bw.F64(secMean, c.mean)
	bw.I32(secLeafID, c.leafID)
	bw.I32(secLMOff, c.lmOff)
	bw.F64(secLMIntercept, c.lmIntercept)
	bw.I32(secLMAttrs, c.lmAttrs)
	bw.F64(secLMCoefs, c.lmCoefs)
	bw.Bytes(secHasLM, c.hasLM)
	bw.Bytes(secLMNames, encodeNames(c.lmNames))
	return nil
}

// WriteBinary persists the tree in the binary model format by compiling
// it first; cmd/train's -format binary runs through here.
func (t *Tree) WriteBinary(w io.Writer) error {
	c := Compile(t)
	if c == nil {
		return fmt.Errorf("mtree: cannot persist a tree with no root")
	}
	return c.WriteBinary(w)
}

// ReadBinary loads a binary tree file into its compiled form directly —
// no pointer nodes are materialized. Corrupt and truncated files are
// rejected with the failing section and offset in the error.
func ReadBinary(data []byte) (*CompiledTree, error) {
	f, err := binfmt.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("mtree: binary tree: %w", err)
	}
	return ReadBinaryFile(f)
}

// ReadBinaryFile loads a tree from an already-parsed container (the
// path internal/modelio and the ensemble loader use).
func ReadBinaryFile(f *binfmt.File) (*CompiledTree, error) {
	if f.Kind != binfmt.KindTree {
		return nil, fmt.Errorf("mtree: binary file has kind %d, want tree (%d)", f.Kind, binfmt.KindTree)
	}
	fail := func(err error) (*CompiledTree, error) {
		return nil, fmt.Errorf("mtree: binary tree: %w", err)
	}
	metaRaw, err := f.Bytes(secTreeMeta, "meta")
	if err != nil {
		return fail(err)
	}
	var meta treeBinMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return nil, fmt.Errorf("mtree: binary tree: malformed meta section: %w", err)
	}
	if meta.SchemaVersion < 0 || meta.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("mtree: binary tree has schema_version %d; this build reads versions 0..%d",
			meta.SchemaVersion, SchemaVersion)
	}
	if meta.Nodes < 1 {
		return nil, fmt.Errorf("mtree: binary tree declares %d nodes; need at least a root", meta.Nodes)
	}

	c := &CompiledTree{
		config:     meta.Config,
		targetName: meta.TargetName,
		attrNames:  meta.AttrNames,
		trainN:     meta.TrainN,
		globalSD:   meta.GlobalSD,
		machine:    meta.Machine,
	}
	type i32Sec struct {
		dst  *[]int32
		id   uint32
		name string
	}
	for _, s := range []i32Sec{
		{&c.splitAttr, secSplitAttr, "split_attr"},
		{&c.left, secLeft, "left"},
		{&c.right, secRight, "right"},
		{&c.leafID, secLeafID, "leaf_id"},
		{&c.lmOff, secLMOff, "lm_off"},
		{&c.lmAttrs, secLMAttrs, "lm_attrs"},
	} {
		if *s.dst, err = f.I32(s.id, s.name); err != nil {
			return fail(err)
		}
	}
	type f64Sec struct {
		dst  *[]float64
		id   uint32
		name string
	}
	for _, s := range []f64Sec{
		{&c.threshold, secThreshold, "threshold"},
		{&c.sd, secSD, "sd"},
		{&c.mean, secMean, "mean"},
		{&c.lmIntercept, secLMIntercept, "lm_intercept"},
		{&c.lmCoefs, secLMCoefs, "lm_coefs"},
	} {
		if *s.dst, err = f.F64(s.id, s.name); err != nil {
			return fail(err)
		}
	}
	if c.nodeN, err = f.I64(secNodeN, "node_n"); err != nil {
		return fail(err)
	}
	if c.hasLM, err = f.U8(secHasLM, "has_lm"); err != nil {
		return fail(err)
	}
	// Cross-check the declared node count against real section data
	// before it sizes any allocation — a corrupt meta section must not be
	// able to demand a gigantic names table.
	if len(c.splitAttr) != meta.Nodes {
		return nil, fmt.Errorf("mtree: binary tree: section split_attr has %d entries, meta declares %d nodes",
			len(c.splitAttr), meta.Nodes)
	}
	namesRaw, err := f.Bytes(secLMNames, "lm_names")
	if err != nil {
		return fail(err)
	}
	if c.lmNames, err = decodeNames(namesRaw, meta.Nodes); err != nil {
		return fail(err)
	}
	if err := c.validate(meta.Nodes); err != nil {
		return nil, fmt.Errorf("mtree: binary tree: %w", err)
	}
	c.numLeaves, c.depth = c.scanShape()
	c.buildWalk()
	return c, nil
}

// validate cross-checks the loaded arrays so a corrupt file cannot
// produce a tree whose evaluation walks out of bounds or loops forever.
func (c *CompiledTree) validate(nodes int) error {
	type arr struct {
		name string
		len  int
	}
	for _, a := range []arr{
		{"split_attr", len(c.splitAttr)}, {"threshold", len(c.threshold)},
		{"left", len(c.left)}, {"right", len(c.right)},
		{"node_n", len(c.nodeN)}, {"sd", len(c.sd)}, {"mean", len(c.mean)},
		{"leaf_id", len(c.leafID)}, {"lm_intercept", len(c.lmIntercept)},
		{"has_lm", len(c.hasLM)},
	} {
		if a.len != nodes {
			return fmt.Errorf("section %s has %d entries, meta declares %d nodes", a.name, a.len, nodes)
		}
	}
	if len(c.lmOff) != nodes+1 {
		return fmt.Errorf("section lm_off has %d entries, want nodes+1 = %d", len(c.lmOff), nodes+1)
	}
	if len(c.lmAttrs) != len(c.lmCoefs) {
		return fmt.Errorf("sections lm_attrs (%d) and lm_coefs (%d) disagree", len(c.lmAttrs), len(c.lmCoefs))
	}
	if c.lmOff[0] != 0 {
		return fmt.Errorf("section lm_off starts at %d, want 0", c.lmOff[0])
	}
	for i := 0; i < nodes; i++ {
		if c.lmOff[i+1] < c.lmOff[i] {
			return fmt.Errorf("section lm_off decreases at node %d (%d -> %d)", i, c.lmOff[i], c.lmOff[i+1])
		}
	}
	if int(c.lmOff[nodes]) != len(c.lmCoefs) {
		return fmt.Errorf("section lm_off ends at %d, lm_coefs has %d entries", c.lmOff[nodes], len(c.lmCoefs))
	}
	for i := 0; i < nodes; i++ {
		if c.splitAttr[i] < 0 {
			continue
		}
		for _, ch := range [2]int32{c.left[i], c.right[i]} {
			// Children must follow their parent (preorder layout); the
			// strictly-increasing walk is what guarantees termination.
			if int(ch) <= i || int(ch) >= nodes {
				return fmt.Errorf("node %d: child index %d outside (parent, %d)", i, ch, nodes)
			}
		}
	}
	return nil
}

// The names codec packs the per-node coefficient-name lists into one
// byte section: for each node, a uint32 name count followed by
// length-prefixed UTF-8 names. Nodes without names contribute a zero
// count, so the section length is 4*nodes plus the string bytes.

func encodeNames(names [][]string) []byte {
	n := 0
	for _, ns := range names {
		n += 4
		for _, s := range ns {
			n += 4 + len(s)
		}
	}
	out := make([]byte, 0, n)
	var u [4]byte
	for _, ns := range names {
		binary.LittleEndian.PutUint32(u[:], uint32(len(ns)))
		out = append(out, u[:]...)
		for _, s := range ns {
			binary.LittleEndian.PutUint32(u[:], uint32(len(s)))
			out = append(out, u[:]...)
			out = append(out, s...)
		}
	}
	return out
}

// maxNameLen bounds one coefficient name before its length is trusted,
// so a corrupt count cannot provoke a huge allocation.
const maxNameLen = 1 << 20

func decodeNames(b []byte, nodes int) ([][]string, error) {
	out := make([][]string, nodes)
	off := 0
	for i := 0; i < nodes; i++ {
		if off+4 > len(b) {
			return nil, fmt.Errorf("names section truncated at byte %d (node %d count)", off, i)
		}
		count := binary.LittleEndian.Uint32(b[off:])
		off += 4
		if count == 0 {
			continue
		}
		if count > uint32(len(b)) {
			return nil, fmt.Errorf("names section: node %d declares %d names, section has %d bytes", i, count, len(b))
		}
		ns := make([]string, count)
		for j := range ns {
			if off+4 > len(b) {
				return nil, fmt.Errorf("names section truncated at byte %d (node %d name %d length)", off, i, j)
			}
			l := binary.LittleEndian.Uint32(b[off:])
			off += 4
			if l > maxNameLen || off+int(l) > len(b) {
				return nil, fmt.Errorf("names section: node %d name %d claims %d bytes at offset %d, section has %d",
					i, j, l, off, len(b))
			}
			ns[j] = string(b[off : off+int(l)])
			off += int(l)
		}
		out[i] = ns
	}
	if off != len(b) {
		return nil, fmt.Errorf("names section has %d trailing bytes after node %d", len(b)-off, nodes-1)
	}
	return out, nil
}
