package mtree

import (
	"bytes"
	"testing"
)

// FuzzTreeReadJSON hammers the persisted-tree loader: arbitrary bytes
// must never panic it, and any tree it accepts must re-persist to a
// stable fixed point (write→read→write byte-identical) — the same
// contract the property suite checks for well-formed trees, here pushed
// into the corners only a fuzzer finds (truncated nodes, absurd
// versions, missing models).
func FuzzTreeReadJSON(f *testing.F) {
	valid := `{"schema_version":1,"config":{"MinLeaf":4,"SDThresholdFraction":0.05,"Prune":true,"Smooth":true,"SmoothingK":15,"DropAttributes":true,"SubtreeAttributesOnly":false},"target":"CPI","attrs":["CPI","L2M"],"train_n":10,"global_sd":0.5,"root":{"split_attr":-1,"model":{"intercept":1.5,"attrs":[1],"coefs":[90],"names":["L2M"]},"n":10,"sd":0.5,"mean":1.6,"leaf_id":1}}`
	f.Add([]byte(valid))
	f.Add([]byte(`{"schema_version":0,"root":{"split_attr":-1,"model":{"intercept":1},"n":1}}`))
	f.Add([]byte(`{"schema_version":99,"root":{"split_attr":-1,"n":1}}`))
	f.Add([]byte(`{"root":null}`))
	f.Add([]byte(`{"root":{"split_attr":0,"threshold":0.5,"left":{"split_attr":-1,"n":1},"n":2}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tree.Root == nil {
			t.Fatal("ReadJSON accepted a tree with nil root")
		}
		var first bytes.Buffer
		if err := tree.WriteJSON(&first); err != nil {
			t.Fatalf("accepted tree does not write: %v", err)
		}
		again, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read of persisted accepted tree failed: %v", err)
		}
		var second bytes.Buffer
		if err := again.WriteJSON(&second); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("write->read->write is not a fixed point")
		}
	})
}
