package mtree

import (
	"repro/internal/dataset"
	"repro/internal/linreg"
)

// pruneNode performs M5's depth-first, bottom-up post-pruning. At each
// interior node the complexity-corrected error of a linear model fitted at
// the node is compared with the corrected error of the subtree below it
// (each child evaluated on the training instances routed to it, combined by
// instance-weighted average). When the node model is at least as accurate
// as the subtree, the subtree is replaced by a leaf — this is how LM18 in
// the paper, a bare constant, survives as a class of its own.
//
// pruneNode returns the corrected error of the (possibly pruned) node on d.
// path carries the root-path split attributes for model fitting.
func pruneNode(n *Node, d *dataset.Dataset, cfg Config, path []int) float64 {
	nodeModel := fitNodeModel(n, d, cfg, path)
	nodeErr := linreg.CorrectedError(nodeModel, d)
	if n.IsLeaf() {
		return nodeErr
	}
	left, right := d.Split(n.SplitAttr, n.Threshold)
	if left.Len() == 0 || right.Len() == 0 {
		// The split no longer separates this data (can happen only with a
		// degenerate threshold); collapse to a leaf.
		makeLeaf(n)
		return nodeErr
	}
	childPath := append(path, n.SplitAttr)
	leftErr := pruneNode(n.Left, left, cfg, childPath)
	rightErr := pruneNode(n.Right, right, cfg, childPath)
	subtreeErr := (float64(left.Len())*leftErr + float64(right.Len())*rightErr) / float64(d.Len())
	if nodeErr <= subtreeErr {
		makeLeaf(n)
		return nodeErr
	}
	return subtreeErr
}

func makeLeaf(n *Node) {
	n.Left, n.Right = nil, nil
	n.SplitAttr = -1
	n.SplitName = ""
	n.Threshold = 0
}
