package mtree

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT emits the tree in Graphviz DOT format, in the visual style of
// the paper's Figures 1 and 2: interior nodes labeled with their split
// test, leaves labeled "LMk (share%)" with the model equation in the
// tooltip. Render with `dot -Tsvg tree.dot -o tree.svg`.
func (t *Tree) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph mtree {\n")
	b.WriteString("  graph [rankdir=TB];\n")
	b.WriteString("  node [fontname=\"Helvetica\", fontsize=10];\n")

	id := 0
	var walk func(n *Node) int
	walk = func(n *Node) int {
		me := id
		id++
		if n.IsLeaf() {
			share := ""
			if t.TrainN > 0 {
				share = fmt.Sprintf(" (%.1f%%)", 100*float64(n.N)/float64(t.TrainN))
			}
			fmt.Fprintf(&b, "  n%d [shape=box, style=rounded, label=\"LM%d%s\", tooltip=%q];\n",
				me, n.LeafID, share, t.TargetName+" = "+n.Model.String())
			return me
		}
		fmt.Fprintf(&b, "  n%d [shape=ellipse, label=%q];\n", me, t.attrName(n.SplitAttr))
		l := walk(n.Left)
		r := walk(n.Right)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"<= %.6g\"];\n", me, l, n.Threshold)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"> %.6g\"];\n", me, r, n.Threshold)
		return me
	}
	walk(t.Root)
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("mtree: writing DOT: %w", err)
	}
	return nil
}
