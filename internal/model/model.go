// Package model defines the learner-agnostic prediction interface shared
// by the single M5' tree and the bagged ensemble. It is the contract the
// serving layer (internal/serve), the CLIs and the analysis code program
// against, so that a registry or report can hold "a trained CPI model"
// without caring whether it is one interpretable tree or ten bagged ones.
//
// The package sits below the learners: it depends only on
// internal/dataset, and internal/mtree / internal/ensemble import it to
// declare conformance. Loading persisted models back as Model values is
// the job of internal/modelio (which must know every concrete format and
// therefore cannot live here without an import cycle).
package model

import "repro/internal/dataset"

// Contribution is one event's share of a prediction: the paper's Eq. 4
// decomposition coef*X/CPI, the unit of the "how much" answer.
type Contribution struct {
	// Attr is the dataset column of the event.
	Attr int `json:"attr"`
	// Name is the event name, e.g. "L1IM".
	Name string `json:"name"`
	// Coef is the model coefficient (cycles per event per instruction).
	Coef float64 `json:"coef"`
	// Rate is the instance's per-instruction event rate.
	Rate float64 `json:"rate"`
	// Cycles is Coef*Rate, the event's CPI contribution.
	Cycles float64 `json:"cycles"`
	// Fraction is Cycles / predicted CPI — the potential relative gain
	// from eliminating the event.
	Fraction float64 `json:"fraction"`
}

// Description summarizes a trained model for registries, reports and the
// GET /v1/models endpoint.
type Description struct {
	// Kind identifies the learner, e.g. "m5-model-tree" or "bagged-m5".
	Kind string `json:"kind"`
	// Target is the predicted column name (e.g. "CPI").
	Target string `json:"target"`
	// AttrNames is the full column schema the model was trained on,
	// including the target column; instances handed to Predict must be
	// this wide, with values positionally aligned.
	AttrNames []string `json:"attrs"`
	// TrainN is the number of training instances.
	TrainN int `json:"train_n"`
	// NumLeaves is the total number of leaves (performance classes); for
	// ensembles it is summed over the members.
	NumLeaves int `json:"num_leaves"`
	// Trees is the number of trees behind the model (1 for a single tree).
	Trees int `json:"trees"`
	// Machine names the simulated machine the training data was collected
	// on (an internal/march registry name, e.g. "core2"); empty when the
	// provenance was not recorded.
	Machine string `json:"machine,omitempty"`
}

// Model is a trained CPI predictor. *mtree.Tree and *ensemble.Bagger
// implement it.
type Model interface {
	// Predict returns the model's estimate of the target for one
	// full-width instance (smoothed, for models that smooth).
	Predict(row dataset.Instance) float64

	// Contributions decomposes the (unsmoothed) prediction into per-event
	// shares, largest CPI contribution first. The sum of Cycles plus the
	// model baseline reproduces the decomposed prediction exactly for a
	// single tree; ensembles report member-averaged shares.
	Contributions(row dataset.Instance) []Contribution

	// NumLeaves reports the number of leaves (performance classes).
	NumLeaves() int

	// Describe summarizes the model.
	Describe() Description
}

// Compilable is implemented by models that can be compiled into a
// faster, semantically identical form — the pointer-linked M5' tree and
// the bagged ensemble both compile to flat-array evaluators whose
// predictions are bit-identical to their own. The serving registry
// compiles every Compilable model at registration, so the hot path
// always runs the flat form while training, analysis and persistence
// keep the original.
type Compilable interface {
	// CompileModel returns the compiled equivalent. Predictions,
	// contributions and descriptions of the result must match the
	// receiver's exactly.
	CompileModel() Model
}

// BatchPredictor is the batch fast path: compiled models predict a
// whole slice of rows into a caller-provided buffer without per-row
// dispatch or allocation. dst must have at least len(rows) elements;
// dst[i] receives the prediction for rows[i], bit-identical to
// Predict(rows[i]).
type BatchPredictor interface {
	PredictInto(dst []float64, rows []dataset.Instance)
}
