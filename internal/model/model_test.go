package model_test

// Interface-conformance tests for the two Model implementations: the
// Description must agree with the training data and with NumLeaves, and
// Contributions must be ordered, schema-consistent, and arithmetically
// coherent — for trees AND ensembles through the same generic checks.

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ensemble"
	"repro/internal/model"
	"repro/internal/mtree"
	"repro/internal/proptest"
)

// fixtures trains one tree and one ensemble on the same dataset.
func fixtures(t *testing.T) (*dataset.Dataset, []model.Model) {
	t.Helper()
	d := proptest.PerfDataset(proptest.NewRand(proptest.CaseSeed("model-conformance", 0)), 400)
	tcfg := mtree.DefaultConfig()
	tcfg.MinLeaf = 40
	tree, err := mtree.Build(d, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	bag, err := ensemble.Train(d, ensemble.Config{Trees: 3, Tree: tcfg, SampleFraction: 0.8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return d, []model.Model{tree, bag}
}

func TestDescribeConsistency(t *testing.T) {
	d, models := fixtures(t)
	wantKinds := []string{"m5-model-tree", "bagged-m5"}
	wantTrees := []int{1, 3}
	for i, m := range models {
		desc := m.Describe()
		if desc.Kind != wantKinds[i] {
			t.Errorf("model %d: Kind %q, want %q", i, desc.Kind, wantKinds[i])
		}
		if desc.Trees != wantTrees[i] {
			t.Errorf("%s: Trees %d, want %d", desc.Kind, desc.Trees, wantTrees[i])
		}
		if desc.Target != d.TargetName() {
			t.Errorf("%s: Target %q, want %q", desc.Kind, desc.Target, d.TargetName())
		}
		if len(desc.AttrNames) != d.NumAttrs() {
			t.Errorf("%s: %d attr names for %d columns", desc.Kind, len(desc.AttrNames), d.NumAttrs())
		}
		for j, a := range d.Attrs() {
			if desc.AttrNames[j] != a.Name {
				t.Errorf("%s: attr %d named %q, want %q", desc.Kind, j, desc.AttrNames[j], a.Name)
			}
		}
		// A single tree reports the full training set; the ensemble
		// reports its first member's bootstrap size (SampleFraction 0.8).
		wantTrainN := d.Len()
		if desc.Trees > 1 {
			wantTrainN = int(0.8 * float64(d.Len()))
		}
		if desc.TrainN != wantTrainN {
			t.Errorf("%s: TrainN %d, want %d", desc.Kind, desc.TrainN, wantTrainN)
		}
		if desc.NumLeaves != m.NumLeaves() {
			t.Errorf("%s: Describe().NumLeaves %d != NumLeaves() %d", desc.Kind, desc.NumLeaves, m.NumLeaves())
		}
		if desc.NumLeaves < desc.Trees {
			t.Errorf("%s: %d leaves over %d trees", desc.Kind, desc.NumLeaves, desc.Trees)
		}
	}
}

func TestContributionsConsistency(t *testing.T) {
	d, models := fixtures(t)
	for _, m := range models {
		desc := m.Describe()
		for i := 0; i < 50; i++ {
			row := d.Row(i * 7 % d.Len())
			cs := m.Contributions(row)
			for j, c := range cs {
				if c.Attr < 0 || c.Attr >= len(desc.AttrNames) {
					t.Fatalf("%s: contribution attr %d outside schema", desc.Kind, c.Attr)
				}
				if c.Name != desc.AttrNames[c.Attr] {
					t.Fatalf("%s: contribution named %q for attr %d (%q)",
						desc.Kind, c.Name, c.Attr, desc.AttrNames[c.Attr])
				}
				if c.Rate != row[c.Attr] {
					t.Fatalf("%s: Rate %v != row[%d] = %v", desc.Kind, c.Rate, c.Attr, row[c.Attr])
				}
				// Exact for a single tree; an ensemble averages Coef and
				// Cycles over members separately, so the identity holds
				// only up to floating-point association.
				if want := c.Coef * c.Rate; desc.Trees == 1 && c.Cycles != want {
					t.Fatalf("%s: Cycles %v != Coef*Rate %v", desc.Kind, c.Cycles, want)
				} else if diff := math.Abs(c.Cycles - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
					t.Fatalf("%s: Cycles %v far from Coef*Rate %v", desc.Kind, c.Cycles, want)
				}
				if j > 0 && cs[j-1].Cycles < c.Cycles {
					t.Fatalf("%s: contributions not sorted largest-first at %d", desc.Kind, j)
				}
			}
			// One contribution per distinct event at most.
			seen := map[int]bool{}
			for _, c := range cs {
				if seen[c.Attr] {
					t.Fatalf("%s: duplicate contribution for attr %d", desc.Kind, c.Attr)
				}
				seen[c.Attr] = true
			}
		}
	}
}
