// Package march is the machine-architecture registry: a declarative
// MachineSpec captures everything the simulated substrate is
// parameterized by — pipeline shape, the context-dependent penalty book,
// cache/TLB geometry, branch-predictor size, prefetcher flavor — as one
// named, validated, JSON-persistable value. The sim packages
// (internal/sim/cpu, internal/sim/mem, internal/sim/branch) hold the
// mechanisms; this package holds the numbers.
//
// A registry of built-in presets (see registry.go) models a small family
// of real microarchitectures around the paper's Core-2-Duo test machine:
// `core2` is the bit-frozen seed configuration (its collected datasets
// are pinned by golden hashes), and the other presets vary width,
// geometry and penalties the way Nehalem-, K10- and Atom-class cores did.
// User-supplied spec files load through ReadFile with strict validation,
// so a typo'd field or a file from a future schema fails loudly instead
// of silently simulating the wrong machine.
package march

import (
	"fmt"

	"repro/internal/sim/branch"
	"repro/internal/sim/cpu"
	"repro/internal/sim/mem"
)

// SchemaVersion is the current spec-file format version. Files declaring
// a newer version are rejected (the fields they rely on do not exist in
// this build); files must declare a version, so a stray JSON document
// cannot pass for a machine spec.
const SchemaVersion = 1

// PipelineSpec describes the core's execution shape: superscalar width,
// the reorder window, and the exposure residuals that make penalties
// context-dependent (1.0 everywhere models an in-order core).
type PipelineSpec struct {
	// IssueWidth is the sustained superscalar width.
	IssueWidth float64 `json:"issue_width"`
	// DepSerialization is the extra cycle cost for an instruction with a
	// producer within its dependency distance.
	DepSerialization float64 `json:"dep_serialization"`
	// ROBWindow is the reorder-buffer depth in instructions; independent
	// long-latency misses within this distance overlap.
	ROBWindow uint64 `json:"rob_window"`
	// MLPResidual is the fraction of memory latency charged for an
	// overlapped (memory-parallel) L2 miss.
	MLPResidual float64 `json:"mlp_residual"`
	// OOOHidingResidual is the fraction of L2-hit latency charged for an
	// L1D miss whose consumer is far away.
	OOOHidingResidual float64 `json:"ooo_hiding_residual"`
	// ShadowResidual is the fraction of the mispredict penalty charged
	// when the flush happens under an outstanding miss.
	ShadowResidual float64 `json:"shadow_residual"`
	// StoreExposure is the fraction of store-side miss latency charged.
	StoreExposure float64 `json:"store_exposure"`
	// FrontEndExposure is the fraction of instruction-side latency
	// charged for an L1I miss.
	FrontEndExposure float64 `json:"front_end_exposure"`
}

// PenaltySpec is the machine's penalty book in core cycles.
type PenaltySpec struct {
	// MemLatency is the L2-miss-to-DRAM latency.
	MemLatency float64 `json:"mem_latency"`
	// L2HitLatency is the L1-miss/L2-hit latency.
	L2HitLatency float64 `json:"l2_hit_latency"`
	// Mispredict is the fully exposed branch-flush cost.
	Mispredict float64 `json:"mispredict"`
	// DTLB0 is the cost of missing the L0 load DTLB but hitting the main
	// DTLB.
	DTLB0 float64 `json:"dtlb0"`
	// Walk is the page-walk cost of a last-level TLB miss.
	Walk float64 `json:"walk"`
	// LdBlockSTA, LdBlockSTD and LdBlockOvSt price the three load-block
	// conditions.
	LdBlockSTA  float64 `json:"ld_block_sta"`
	LdBlockSTD  float64 `json:"ld_block_std"`
	LdBlockOvSt float64 `json:"ld_block_ov_st"`
	// Misalign prices a misaligned memory reference.
	Misalign float64 `json:"misalign"`
	// SplitLoad and SplitStore price cache-line-crossing accesses.
	SplitLoad  float64 `json:"split_load"`
	SplitStore float64 `json:"split_store"`
	// LCP is the pre-decoder stall for a length-changing prefix.
	LCP float64 `json:"lcp"`
}

// CacheSpec is one cache's geometry.
type CacheSpec struct {
	SizeB int64 `json:"size_b"`
	Ways  int   `json:"ways"`
	LineB int64 `json:"line_b"`
}

// TLBSpec is one TLB's geometry.
type TLBSpec struct {
	Entries int   `json:"entries"`
	Ways    int   `json:"ways"`
	PageB   int64 `json:"page_b"`
}

// CacheSet names the three caches of the modeled hierarchy.
type CacheSet struct {
	L1I CacheSpec `json:"l1i"`
	L1D CacheSpec `json:"l1d"`
	L2  CacheSpec `json:"l2"`
}

// TLBSet names the three TLBs of the modeled hierarchy.
type TLBSet struct {
	DTLB0 TLBSpec `json:"dtlb0"`
	DTLB  TLBSpec `json:"dtlb"`
	ITLB  TLBSpec `json:"itlb"`
}

// BranchSpec describes the gshare + BTB branch predictor.
type BranchSpec struct {
	HistoryBits uint `json:"history_bits"`
	BTBEntries  int  `json:"btb_entries"`
}

// PrefetchSpec describes the hardware stream prefetchers. Degree is the
// number of lines run ahead of a detected stream; it must be 0 exactly
// when Enabled is false, so a spec cannot half-disable prefetching.
type PrefetchSpec struct {
	Enabled bool `json:"enabled"`
	Degree  int  `json:"degree"`
}

// WrongPathSpec controls speculative wrong-path activity after each
// mispredict (it perturbs speculative-inclusive counters).
type WrongPathSpec struct {
	Fetches int `json:"fetches"`
	Loads   int `json:"loads"`
}

// MachineSpec is one machine: a complete, declarative parameterization
// of the simulated substrate. The zero value is invalid; start from a
// preset (registry.go) or a spec file (ReadFile).
type MachineSpec struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"`
	Description   string `json:"description,omitempty"`

	Pipeline  PipelineSpec  `json:"pipeline"`
	Penalties PenaltySpec   `json:"penalties"`
	Caches    CacheSet      `json:"caches"`
	TLBs      TLBSet        `json:"tlbs"`
	Branch    BranchSpec    `json:"branch"`
	Prefetch  PrefetchSpec  `json:"prefetch"`
	WrongPath WrongPathSpec `json:"wrong_path"`
}

// Validate checks the spec end to end: name shape, pipeline and penalty
// ranges, and — via the sim packages' own validators — cache, TLB and
// predictor geometry. Errors name the failing field.
func (s MachineSpec) Validate() error {
	if s.SchemaVersion < 1 || s.SchemaVersion > SchemaVersion {
		return fmt.Errorf("march: machine %q declares schema_version %d; this build supports 1..%d",
			s.Name, s.SchemaVersion, SchemaVersion)
	}
	if s.Name == "" {
		return fmt.Errorf("march: machine has no name")
	}
	for _, r := range s.Name {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
			return fmt.Errorf("march: machine name %q may only contain [a-z0-9_-]", s.Name)
		}
	}
	p := s.Pipeline
	if p.IssueWidth <= 0 {
		return fmt.Errorf("march: %s: pipeline.issue_width %v must be positive", s.Name, p.IssueWidth)
	}
	if p.DepSerialization < 0 {
		return fmt.Errorf("march: %s: pipeline.dep_serialization %v must be non-negative", s.Name, p.DepSerialization)
	}
	if p.ROBWindow < 1 {
		return fmt.Errorf("march: %s: pipeline.rob_window must be at least 1 (1 models an in-order core)", s.Name)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"mlp_residual", p.MLPResidual},
		{"ooo_hiding_residual", p.OOOHidingResidual},
		{"shadow_residual", p.ShadowResidual},
		{"store_exposure", p.StoreExposure},
		{"front_end_exposure", p.FrontEndExposure},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("march: %s: pipeline.%s %v outside [0, 1]", s.Name, f.name, f.v)
		}
	}
	pen := s.Penalties
	if pen.MemLatency <= 0 || pen.L2HitLatency <= 0 {
		return fmt.Errorf("march: %s: penalties.mem_latency and penalties.l2_hit_latency must be positive", s.Name)
	}
	if pen.MemLatency < pen.L2HitLatency {
		return fmt.Errorf("march: %s: penalties.mem_latency %v below penalties.l2_hit_latency %v", s.Name, pen.MemLatency, pen.L2HitLatency)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"mispredict", pen.Mispredict}, {"dtlb0", pen.DTLB0}, {"walk", pen.Walk},
		{"ld_block_sta", pen.LdBlockSTA}, {"ld_block_std", pen.LdBlockSTD},
		{"ld_block_ov_st", pen.LdBlockOvSt}, {"misalign", pen.Misalign},
		{"split_load", pen.SplitLoad}, {"split_store", pen.SplitStore}, {"lcp", pen.LCP},
	} {
		if f.v < 0 {
			return fmt.Errorf("march: %s: penalties.%s %v must be non-negative", s.Name, f.name, f.v)
		}
	}
	// Geometry checks delegate to the sim packages so the rules cannot
	// drift: sets and lines must be powers of two, sizes divisible.
	g := s.Geometry()
	for _, c := range []mem.CacheConfig{g.L1I, g.L1D, g.L2} {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("march: %s: %w", s.Name, err)
		}
	}
	for _, t := range []mem.TLBConfig{g.DTLB0, g.DTLB, g.ITLB} {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("march: %s: %w", s.Name, err)
		}
	}
	if err := s.BranchConfig().Validate(); err != nil {
		return fmt.Errorf("march: %s: %w", s.Name, err)
	}
	pf := s.Prefetch
	if pf.Enabled && (pf.Degree < 1 || pf.Degree > 8) {
		return fmt.Errorf("march: %s: prefetch.degree %d outside 1..8", s.Name, pf.Degree)
	}
	if !pf.Enabled && pf.Degree != 0 {
		return fmt.Errorf("march: %s: prefetch.degree must be 0 when prefetch is disabled", s.Name)
	}
	if s.WrongPath.Fetches < 0 || s.WrongPath.Loads < 0 {
		return fmt.Errorf("march: %s: wrong_path counts must be non-negative", s.Name)
	}
	return nil
}

// CPUConfig materializes the timing configuration for internal/sim/cpu.
// The Seed field is a default (collectors override it per benchmark).
func (s MachineSpec) CPUConfig() cpu.Config {
	return cpu.Config{
		IssueWidth:         s.Pipeline.IssueWidth,
		DepSerialization:   s.Pipeline.DepSerialization,
		MemLatency:         s.Penalties.MemLatency,
		L2HitLatency:       s.Penalties.L2HitLatency,
		MispredictPenalty:  s.Penalties.Mispredict,
		Dtlb0Penalty:       s.Penalties.DTLB0,
		WalkPenalty:        s.Penalties.Walk,
		LdBlockSTAPenalty:  s.Penalties.LdBlockSTA,
		LdBlockSTDPenalty:  s.Penalties.LdBlockSTD,
		LdBlockOvStPenalty: s.Penalties.LdBlockOvSt,
		MisalignPenalty:    s.Penalties.Misalign,
		SplitLoadPenalty:   s.Penalties.SplitLoad,
		SplitStorePenalty:  s.Penalties.SplitStore,
		LCPPenalty:         s.Penalties.LCP,
		ROBWindow:          s.Pipeline.ROBWindow,
		MLPResidual:        s.Pipeline.MLPResidual,
		OOOHidingResidual:  s.Pipeline.OOOHidingResidual,
		ShadowResidual:     s.Pipeline.ShadowResidual,
		StoreExposure:      s.Pipeline.StoreExposure,
		FrontEndExposure:   s.Pipeline.FrontEndExposure,
		WrongPathFetches:   s.WrongPath.Fetches,
		WrongPathLoads:     s.WrongPath.Loads,
		Seed:               1,
	}
}

// Geometry materializes the cache/TLB geometry for internal/sim/mem,
// including the prefetch degree (0 when disabled).
func (s MachineSpec) Geometry() mem.Geometry {
	degree := 0
	if s.Prefetch.Enabled {
		degree = s.Prefetch.Degree
	}
	return mem.Geometry{
		L1I:            mem.CacheConfig{Name: "L1I", SizeB: s.Caches.L1I.SizeB, Ways: s.Caches.L1I.Ways, LineB: s.Caches.L1I.LineB},
		L1D:            mem.CacheConfig{Name: "L1D", SizeB: s.Caches.L1D.SizeB, Ways: s.Caches.L1D.Ways, LineB: s.Caches.L1D.LineB},
		L2:             mem.CacheConfig{Name: "L2", SizeB: s.Caches.L2.SizeB, Ways: s.Caches.L2.Ways, LineB: s.Caches.L2.LineB},
		DTLB0:          mem.TLBConfig{Name: "DTLB0", Entries: s.TLBs.DTLB0.Entries, Ways: s.TLBs.DTLB0.Ways, PageB: s.TLBs.DTLB0.PageB},
		DTLB:           mem.TLBConfig{Name: "DTLB", Entries: s.TLBs.DTLB.Entries, Ways: s.TLBs.DTLB.Ways, PageB: s.TLBs.DTLB.PageB},
		ITLB:           mem.TLBConfig{Name: "ITLB", Entries: s.TLBs.ITLB.Entries, Ways: s.TLBs.ITLB.Ways, PageB: s.TLBs.ITLB.PageB},
		PrefetchDegree: degree,
	}
}

// BranchConfig materializes the predictor geometry for
// internal/sim/branch.
func (s MachineSpec) BranchConfig() branch.Config {
	return branch.Config{HistoryBits: s.Branch.HistoryBits, BTBEntries: s.Branch.BTBEntries}
}

// CPIFloor returns the machine's hard CPI lower bound and whether it may
// be used as a consistency relation. The timing model charges every
// retired instruction a base cost of 1/IssueWidth cycles, and every other
// term in the penalty book is non-negative as long as the memory-overlap
// credit cannot exceed the memory latency itself — i.e. as long as
// ROBWindow <= IssueWidth*MemLatency, which holds for every built-in
// preset. For an exotic user spec that violates that condition the floor
// is not a theorem, so ok is false and the refutation layer skips it.
func (s MachineSpec) CPIFloor() (floor float64, ok bool) {
	if s.Pipeline.IssueWidth <= 0 {
		return 0, false
	}
	if float64(s.Pipeline.ROBWindow) > s.Pipeline.IssueWidth*s.Penalties.MemLatency {
		return 0, false
	}
	return 1 / s.Pipeline.IssueWidth, true
}

// FeatureNames returns the architecture feature column names, in the
// order Features emits them. They carry an "Arch" prefix so pooled
// cross-architecture datasets cannot collide with Table I event names.
func FeatureNames() []string {
	return []string{
		"ArchIssueW", // issue width
		"ArchROB",    // reorder-buffer window
		"ArchMemLat", // L2-miss-to-DRAM latency, cycles
		"ArchL2Lat",  // L2 hit latency, cycles
		"ArchMisp",   // exposed mispredict penalty, cycles
		"ArchL1DKB",  // L1D size, KB
		"ArchL2KB",   // L2 size, KB
		"ArchPF",     // prefetch degree (0 = disabled)
	}
}

// Features returns the spec's architecture feature vector, aligned with
// FeatureNames. These are the columns a pooled cross-architecture tree
// can split on to separate machines.
func (s MachineSpec) Features() []float64 {
	degree := 0
	if s.Prefetch.Enabled {
		degree = s.Prefetch.Degree
	}
	return []float64{
		s.Pipeline.IssueWidth,
		float64(s.Pipeline.ROBWindow),
		s.Penalties.MemLatency,
		s.Penalties.L2HitLatency,
		s.Penalties.Mispredict,
		float64(s.Caches.L1D.SizeB) / 1024,
		float64(s.Caches.L2.SizeB) / 1024,
		float64(degree),
	}
}
