package march

import (
	"bytes"
	"testing"
)

// FuzzMachineSpecReadJSON hammers the strict spec reader: arbitrary bytes
// must never panic it, and any spec it accepts must be valid and must
// re-persist to a stable fixed point (write→read→write byte-identical) —
// so a fuzzer-found input can never smuggle an unvalidated machine into
// the simulator.
func FuzzMachineSpecReadJSON(f *testing.F) {
	for _, s := range All() {
		var b bytes.Buffer
		if err := s.WriteJSON(&b); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema_version":1,"name":"x"}`))
	f.Add([]byte(`{"schema_version":99,"name":"future"}`))
	f.Add([]byte(`{"schema_version":1,"name":"x","pipeline":{"issue_width":-1}}`))
	f.Add([]byte(`{"schema_version":1,"name":"x","unknown_field":{}}`))
	f.Add([]byte(`{"schema_version":1,"name":"x","caches":{"l1d":{"size_b":31337,"ways":3,"line_b":48}}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid spec: %v", err)
		}
		var first bytes.Buffer
		if err := s.WriteJSON(&first); err != nil {
			t.Fatalf("accepted spec does not write: %v", err)
		}
		again, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read of persisted accepted spec failed: %v", err)
		}
		if again != s {
			t.Fatal("spec changed across write->read")
		}
		var second bytes.Buffer
		if err := again.WriteJSON(&second); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("write->read->write is not a fixed point")
		}
	})
}
