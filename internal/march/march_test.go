package march

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/sim/cpu"
	"repro/internal/sim/mem"
)

// TestPresetsValidate: every built-in machine passes its own strict
// validation — the registry can never ship a machine a spec file would
// be rejected for.
func TestPresetsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s: %v", s.Name, err)
		}
	}
	if len(All()) < 4 {
		t.Fatalf("registry has %d presets, want at least 4", len(All()))
	}
}

// TestCore2Materialization pins the seed machine bit-for-bit: the golden
// collection hashes depend on exactly these numbers, and the in-package
// sim test fixtures restate them. Any drift fails here first, with a
// field-level diff.
func TestCore2Materialization(t *testing.T) {
	wantCPU := cpu.Config{
		IssueWidth:         4,
		DepSerialization:   0.45,
		MemLatency:         165,
		L2HitLatency:       14,
		MispredictPenalty:  13,
		Dtlb0Penalty:       2,
		WalkPenalty:        30,
		LdBlockSTAPenalty:  5,
		LdBlockSTDPenalty:  6,
		LdBlockOvStPenalty: 5,
		MisalignPenalty:    1.5,
		SplitLoadPenalty:   9,
		SplitStorePenalty:  9,
		LCPPenalty:         6,
		ROBWindow:          96,
		MLPResidual:        0.22,
		OOOHidingResidual:  0.18,
		ShadowResidual:     0.25,
		StoreExposure:      0.15,
		FrontEndExposure:   0.8,
		WrongPathFetches:   2,
		WrongPathLoads:     1,
		Seed:               1,
	}
	wantGeom := mem.Geometry{
		L1I:            mem.CacheConfig{Name: "L1I", SizeB: 32 << 10, Ways: 8, LineB: 64},
		L1D:            mem.CacheConfig{Name: "L1D", SizeB: 32 << 10, Ways: 8, LineB: 64},
		L2:             mem.CacheConfig{Name: "L2", SizeB: 4 << 20, Ways: 16, LineB: 64},
		DTLB0:          mem.TLBConfig{Name: "DTLB0", Entries: 16, Ways: 4, PageB: 4 << 10},
		DTLB:           mem.TLBConfig{Name: "DTLB", Entries: 256, Ways: 4, PageB: 4 << 10},
		ITLB:           mem.TLBConfig{Name: "ITLB", Entries: 128, Ways: 4, PageB: 4 << 10},
		PrefetchDegree: 2,
	}
	s := Core2()
	if got := s.CPUConfig(); got != wantCPU {
		t.Errorf("core2 CPUConfig drifted:\ngot  %+v\nwant %+v", got, wantCPU)
	}
	if got := s.Geometry(); got != wantGeom {
		t.Errorf("core2 Geometry drifted:\ngot  %+v\nwant %+v", got, wantGeom)
	}
	if bc := s.BranchConfig(); bc.HistoryBits != 14 || bc.BTBEntries != 2048 {
		t.Errorf("core2 BranchConfig drifted: %+v", bc)
	}
}

// TestNetBurstMatchesRetiredPreset pins the netburst preset to the values
// the pre-registry cpu.NetBurstConfig constructor used, so the dedicated
// NetBurst experiment keeps measuring the same machine.
func TestNetBurstMatchesRetiredPreset(t *testing.T) {
	want := Core2().CPUConfig()
	want.IssueWidth = 3
	want.ROBWindow = 126
	want.MemLatency = 220
	want.L2HitLatency = 18
	want.MispredictPenalty = 31
	if got := NetBurst().CPUConfig(); got != want {
		t.Errorf("netburst CPUConfig drifted:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestRoundTripByteStable: spec -> JSON -> spec -> JSON produces identical
// bytes and an identical spec, for every preset.
func TestRoundTripByteStable(t *testing.T) {
	for _, s := range All() {
		var first bytes.Buffer
		if err := s.WriteJSON(&first); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		back, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("%s: re-reading own output: %v", s.Name, err)
		}
		if back != s {
			t.Errorf("%s: spec changed across round trip:\ngot  %+v\nwant %+v", s.Name, back, s)
		}
		var second bytes.Buffer
		if err := back.WriteJSON(&second); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%s: serialization not byte-stable", s.Name)
		}
	}
}

// TestReadJSONRejects: the strict reader refuses every malformation with
// a descriptive error, and names the offense.
func TestReadJSONRejects(t *testing.T) {
	valid := func(mutate func(*MachineSpec)) string {
		s := Core2()
		mutate(&s)
		var b bytes.Buffer
		if err := s.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	cases := []struct {
		name    string
		input   string
		wantSub string
	}{
		{"malformed", `{`, "decoding"},
		{"not an object", `42`, "decoding"},
		{"unknown field", `{"schema_version":1,"name":"x","penalty_book":{}}`, "penalty_book"},
		{"missing schema version", valid(func(s *MachineSpec) { s.SchemaVersion = 0 }), "schema_version"},
		{"future schema version", valid(func(s *MachineSpec) { s.SchemaVersion = SchemaVersion + 1 }), "schema_version"},
		{"trailing data", valid(func(*MachineSpec) {}) + "{}", "trailing data"},
		{"empty name", valid(func(s *MachineSpec) { s.Name = "" }), "no name"},
		{"bad name chars", valid(func(s *MachineSpec) { s.Name = "Core 2" }), "[a-z0-9_-]"},
		{"zero issue width", valid(func(s *MachineSpec) { s.Pipeline.IssueWidth = 0 }), "issue_width"},
		{"residual above 1", valid(func(s *MachineSpec) { s.Pipeline.MLPResidual = 1.5 }), "mlp_residual"},
		{"zero rob", valid(func(s *MachineSpec) { s.Pipeline.ROBWindow = 0 }), "rob_window"},
		{"mem below l2", valid(func(s *MachineSpec) { s.Penalties.MemLatency = 5 }), "mem_latency"},
		{"negative penalty", valid(func(s *MachineSpec) { s.Penalties.Walk = -1 }), "walk"},
		{"indivisible cache", valid(func(s *MachineSpec) { s.Caches.L1D.SizeB = 31 << 10 }), "L1D"},
		{"non-pow2 tlb sets", valid(func(s *MachineSpec) { s.TLBs.DTLB.Entries = 24 }), "DTLB"},
		{"disabled prefetch with degree", valid(func(s *MachineSpec) { s.Prefetch = PrefetchSpec{Enabled: false, Degree: 2} }), "prefetch"},
		{"enabled prefetch degree 0", valid(func(s *MachineSpec) { s.Prefetch = PrefetchSpec{Enabled: true, Degree: 0} }), "prefetch"},
		{"negative wrong path", valid(func(s *MachineSpec) { s.WrongPath.Loads = -1 }), "wrong_path"},
	}
	for _, tc := range cases {
		_, err := ReadJSON(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestReadFile: a written file loads back; a missing file and a rejected
// file both name the path.
func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	var b bytes.Buffer
	if err := K10().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s != K10() {
		t.Error("loaded spec differs from the one written")
	}
	if _, err := ReadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema_version":9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("rejected-file error %v does not name the path", err)
	}
}

// TestRegistryLookup: Names is sorted and complete, Lookup hits every
// name and misses unknowns, Resolve implements the flag contract.
func TestRegistryLookup(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	for _, n := range names {
		s, ok := Lookup(n)
		if !ok || s.Name != n {
			t.Errorf("Lookup(%q) = %+v, %v", n, s.Name, ok)
		}
	}
	if _, ok := Lookup("pentium-pro"); ok {
		t.Error("Lookup accepted an unknown machine")
	}

	if s, err := Resolve("", ""); err != nil || s.Name != "core2" {
		t.Errorf("Resolve defaults: %v, %v", s.Name, err)
	}
	if s, err := Resolve("atom", ""); err != nil || s.Name != "atom" {
		t.Errorf("Resolve by name: %v, %v", s.Name, err)
	}
	if _, err := Resolve("486", ""); err == nil || !strings.Contains(err.Error(), "built-ins") {
		t.Errorf("Resolve unknown name: %v", err)
	}
	if _, err := Resolve("atom", "x.json"); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("Resolve with both flags: %v", err)
	}
}

// TestFeaturesAligned: the feature vector has one value per feature name,
// and distinct machines in the cross-architecture set are separable by at
// least one feature (otherwise a pooled tree could not tell them apart).
func TestFeaturesAligned(t *testing.T) {
	names := FeatureNames()
	set := CrossArchSet()
	if len(set) < 4 {
		t.Fatalf("cross-arch set has %d machines, want at least 4", len(set))
	}
	seen := map[string]bool{}
	for _, s := range set {
		f := s.Features()
		if len(f) != len(names) {
			t.Fatalf("%s: %d features for %d names", s.Name, len(f), len(names))
		}
		key := fmt.Sprintf("%v", f)
		if seen[key] {
			t.Errorf("%s: feature vector %v duplicates another machine's", s.Name, f)
		}
		seen[key] = true
	}
}

// TestGeometryScaledStillValid: the test-scale shrink used by sim unit
// tests keeps every preset's geometry valid.
func TestGeometryScaledStillValid(t *testing.T) {
	for _, s := range All() {
		for _, f := range []int64{2, 16, 256} {
			g := s.Geometry().Scaled(f)
			for _, c := range []mem.CacheConfig{g.L1I, g.L1D, g.L2} {
				if err := c.Validate(); err != nil {
					t.Errorf("%s /%d: %v", s.Name, f, err)
				}
			}
			for _, tl := range []mem.TLBConfig{g.DTLB0, g.DTLB, g.ITLB} {
				if err := tl.Validate(); err != nil {
					t.Errorf("%s /%d: %v", s.Name, f, err)
				}
			}
		}
	}
}
