package march

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JSON persistence for machine specs. Reading is deliberately strict:
// unknown fields are rejected (a typo'd penalty name must not silently
// simulate the default machine), the schema version must be declared and
// supported, and the decoded spec must pass Validate before it is
// returned. Writing is deterministic — the same spec always produces the
// same bytes — so spec files diff cleanly and round-trip byte-stably.

// WriteJSON serializes the spec with stable two-space indentation.
func (s MachineSpec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("march: encoding machine %q: %w", s.Name, err)
	}
	return nil
}

// ReadJSON deserializes and validates one machine spec. Malformed JSON,
// unknown fields, undeclared or future schema versions, trailing data
// and invalid parameter values are all errors; it never panics on
// adversarial input (see FuzzMachineSpecReadJSON).
func ReadJSON(r io.Reader) (MachineSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s MachineSpec
	if err := dec.Decode(&s); err != nil {
		return MachineSpec{}, fmt.Errorf("march: decoding machine spec: %w", err)
	}
	// A spec file holds exactly one document; trailing garbage is a sign
	// of a truncated edit or a concatenation mistake.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return MachineSpec{}, fmt.Errorf("march: trailing data after machine spec")
	}
	if err := s.Validate(); err != nil {
		return MachineSpec{}, err
	}
	return s, nil
}

// ReadFile loads a user-supplied spec file.
func ReadFile(path string) (MachineSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return MachineSpec{}, fmt.Errorf("march: %w", err)
	}
	s, err := ReadJSON(bytes.NewReader(data))
	if err != nil {
		return MachineSpec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}
