package march

import (
	"fmt"
	"sort"
	"strings"
)

// The built-in preset registry. Each preset is a constructor returning a
// fresh spec (callers may mutate their copy freely). `core2` is the
// paper's test machine and the repository's bit-frozen seed
// configuration: its materialized cpu/mem/branch parameters are pinned
// by the golden collection hashes in golden_test.go, so its numbers must
// never change. The other presets model neighboring machine classes the
// cross-architecture experiments compare against.

// Core2 returns the paper's 2.4 GHz Core-2-Duo-like test machine: 4-wide
// out-of-order, 96-entry window, 32 KB L1s, 4 MB L2, degree-2 stream
// prefetchers. This is the seed machine; every collected golden dataset
// is bit-frozen against it.
func Core2() MachineSpec {
	return MachineSpec{
		SchemaVersion: SchemaVersion,
		Name:          "core2",
		Description:   "Core-2-Duo-like 4-wide out-of-order core (the paper's test machine)",
		Pipeline: PipelineSpec{
			IssueWidth:        4,
			DepSerialization:  0.45,
			ROBWindow:         96,
			MLPResidual:       0.22,
			OOOHidingResidual: 0.18,
			ShadowResidual:    0.25,
			StoreExposure:     0.15,
			FrontEndExposure:  0.8,
		},
		Penalties: PenaltySpec{
			MemLatency:   165,
			L2HitLatency: 14,
			Mispredict:   13,
			DTLB0:        2,
			Walk:         30,
			LdBlockSTA:   5,
			LdBlockSTD:   6,
			LdBlockOvSt:  5,
			Misalign:     1.5,
			SplitLoad:    9,
			SplitStore:   9,
			LCP:          6,
		},
		Caches: CacheSet{
			L1I: CacheSpec{SizeB: 32 << 10, Ways: 8, LineB: 64},
			L1D: CacheSpec{SizeB: 32 << 10, Ways: 8, LineB: 64},
			L2:  CacheSpec{SizeB: 4 << 20, Ways: 16, LineB: 64},
		},
		TLBs: TLBSet{
			DTLB0: TLBSpec{Entries: 16, Ways: 4, PageB: 4 << 10},
			DTLB:  TLBSpec{Entries: 256, Ways: 4, PageB: 4 << 10},
			ITLB:  TLBSpec{Entries: 128, Ways: 4, PageB: 4 << 10},
		},
		Branch:    BranchSpec{HistoryBits: 14, BTBEntries: 2048},
		Prefetch:  PrefetchSpec{Enabled: true, Degree: 2},
		WrongPath: WrongPathSpec{Fetches: 2, Loads: 1},
	}
}

// Nehalem returns a Nehalem-class machine: same 4-wide front end as
// Core 2 but a deeper window, an integrated memory controller (fewer
// memory cycles), a larger last-level cache with higher hit latency, a
// bigger predictor, and more aggressive prefetch.
func Nehalem() MachineSpec {
	s := Core2()
	s.Name = "nehalem"
	s.Description = "Nehalem-like 4-wide out-of-order core: deeper window, integrated memory controller, large LLC"
	s.Pipeline.ROBWindow = 128
	s.Pipeline.MLPResidual = 0.18
	s.Pipeline.OOOHidingResidual = 0.15
	s.Pipeline.ShadowResidual = 0.22
	s.Penalties.MemLatency = 140
	s.Penalties.L2HitLatency = 26 // LLC-like latency in this two-level model
	s.Penalties.Mispredict = 17
	s.Caches.L2 = CacheSpec{SizeB: 8 << 20, Ways: 16, LineB: 64}
	s.TLBs.DTLB0 = TLBSpec{Entries: 64, Ways: 4, PageB: 4 << 10}
	s.TLBs.DTLB = TLBSpec{Entries: 512, Ways: 4, PageB: 4 << 10}
	s.Branch = BranchSpec{HistoryBits: 16, BTBEntries: 4096}
	s.Prefetch.Degree = 4
	return s
}

// K10 returns a K10-class (AMD Barcelona-like) machine: 3-wide, a
// shallower window, big low-associativity L1s with a small exclusive-ish
// L2, and a short pipeline with a cheap flush.
func K10() MachineSpec {
	s := Core2()
	s.Name = "k10"
	s.Description = "K10-like 3-wide out-of-order core: 64 KB 2-way L1s, small L2, short pipeline"
	s.Pipeline.IssueWidth = 3
	s.Pipeline.DepSerialization = 0.5
	s.Pipeline.ROBWindow = 72
	s.Pipeline.MLPResidual = 0.28
	s.Pipeline.OOOHidingResidual = 0.22
	s.Pipeline.ShadowResidual = 0.3
	s.Pipeline.StoreExposure = 0.18
	s.Penalties.MemLatency = 150
	s.Penalties.L2HitLatency = 12
	s.Penalties.Mispredict = 12
	s.Penalties.Walk = 35
	s.Caches.L1I = CacheSpec{SizeB: 64 << 10, Ways: 2, LineB: 64}
	s.Caches.L1D = CacheSpec{SizeB: 64 << 10, Ways: 2, LineB: 64}
	s.Caches.L2 = CacheSpec{SizeB: 512 << 10, Ways: 16, LineB: 64}
	s.TLBs.DTLB0 = TLBSpec{Entries: 32, Ways: 4, PageB: 4 << 10}
	s.TLBs.DTLB = TLBSpec{Entries: 512, Ways: 4, PageB: 4 << 10}
	s.TLBs.ITLB = TLBSpec{Entries: 32, Ways: 4, PageB: 4 << 10}
	s.Branch = BranchSpec{HistoryBits: 12, BTBEntries: 2048}
	s.Prefetch.Degree = 1
	return s
}

// Atom returns an Atom-class machine: a narrow in-order core (every
// exposure residual is 1 — no miss overlap, no latency hiding, no
// mispredict shadowing), small caches, small predictor. The machine for
// which a fixed-penalty CPI model is actually correct.
func Atom() MachineSpec {
	s := Core2()
	s.Name = "atom"
	s.Description = "Atom-like 2-wide in-order core: every penalty fully exposed, small caches"
	s.Pipeline.IssueWidth = 2
	s.Pipeline.DepSerialization = 0.6
	s.Pipeline.ROBWindow = 1
	s.Pipeline.MLPResidual = 1
	s.Pipeline.OOOHidingResidual = 1
	s.Pipeline.ShadowResidual = 1
	s.Pipeline.StoreExposure = 1
	s.Pipeline.FrontEndExposure = 1
	s.Penalties.MemLatency = 200
	s.Penalties.L2HitLatency = 16
	s.Caches.L1D = CacheSpec{SizeB: 24 << 10, Ways: 6, LineB: 64}
	s.Caches.L2 = CacheSpec{SizeB: 512 << 10, Ways: 8, LineB: 64}
	s.TLBs.DTLB = TLBSpec{Entries: 64, Ways: 4, PageB: 4 << 10}
	s.TLBs.ITLB = TLBSpec{Entries: 32, Ways: 4, PageB: 4 << 10}
	s.Branch = BranchSpec{HistoryBits: 12, BTBEntries: 128}
	s.Prefetch.Degree = 1
	return s
}

// NetBurst returns the Pentium-4-like variant the paper's §V.A remark
// contrasts against: Core 2 geometry, but a 31-stage pipeline's flush
// cost and a higher clock's memory latency in cycles.
func NetBurst() MachineSpec {
	s := Core2()
	s.Name = "netburst"
	s.Description = "NetBurst-like deep-pipeline core: 31-cycle flush, higher memory latency in cycles"
	s.Pipeline.IssueWidth = 3
	s.Pipeline.ROBWindow = 126
	s.Penalties.MemLatency = 220
	s.Penalties.L2HitLatency = 18
	s.Penalties.Mispredict = 31
	return s
}

// Core2NoPF returns the core2 machine with the hardware stream
// prefetchers fused off — the substrate-ablation machine.
func Core2NoPF() MachineSpec {
	s := Core2()
	s.Name = "core2-nopf"
	s.Description = "core2 with the hardware stream prefetchers disabled"
	s.Prefetch = PrefetchSpec{Enabled: false, Degree: 0}
	return s
}

// presets maps preset names to constructors, in registry order.
var presets = []struct {
	name string
	make func() MachineSpec
}{
	{"core2", Core2},
	{"nehalem", Nehalem},
	{"k10", K10},
	{"atom", Atom},
	{"netburst", NetBurst},
	{"core2-nopf", Core2NoPF},
}

// Names returns the built-in preset names, sorted.
func Names() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.name
	}
	sort.Strings(out)
	return out
}

// Lookup returns the named preset, or false.
func Lookup(name string) (MachineSpec, bool) {
	for _, p := range presets {
		if p.name == name {
			return p.make(), true
		}
	}
	return MachineSpec{}, false
}

// All returns every built-in preset in registry order (core2 first).
func All() []MachineSpec {
	out := make([]MachineSpec, len(presets))
	for i, p := range presets {
		out[i] = p.make()
	}
	return out
}

// CrossArchSet returns the machines the cross-architecture experiment
// trains over: the seed machine plus the four presets that vary width,
// ordering, geometry and prefetch around it. NetBurst is excluded — it
// shares core2's geometry and has its own dedicated experiment.
func CrossArchSet() []MachineSpec {
	return []MachineSpec{Core2(), Nehalem(), K10(), Atom(), Core2NoPF()}
}

// Resolve turns the CLI's -march/-march-file flag pair into a spec: a
// non-empty file path wins (and may define any machine), otherwise the
// name must be a built-in preset, and both empty means core2.
func Resolve(name, file string) (MachineSpec, error) {
	if file != "" {
		if name != "" {
			return MachineSpec{}, fmt.Errorf("march: -march and -march-file are mutually exclusive")
		}
		return ReadFile(file)
	}
	if name == "" {
		return Core2(), nil
	}
	s, ok := Lookup(name)
	if !ok {
		return MachineSpec{}, fmt.Errorf("march: unknown machine %q; built-ins: %s", name, strings.Join(Names(), ", "))
	}
	return s, nil
}
