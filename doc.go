// Package repro reproduces "Using Model Trees for Computer Architecture
// Performance Analysis of Software Applications" (Ould-Ahmed-Vall, Woodlee,
// Yount, Doshi, Abraham — ISPASS 2007) as a self-contained Go library.
//
// The paper trains an M5' model tree to predict CPI from 20 hardware
// event-counter ratios collected over equal-instruction-count sections of
// SPEC CPU2006 workloads on a Core 2 Duo, and uses the tree's structure and
// leaf equations to identify performance limiters ("what") and quantify the
// gain from fixing them ("how much").
//
// Since the original hardware, workloads, and Weka toolchain are not
// available here, the repository builds the whole stack from scratch:
//
//   - internal/sim/...: a trace-driven Core-2-Duo-like core (caches, TLBs,
//     branch prediction, stream prefetchers, interval-analysis timing with
//     interaction-dependent penalties) exposing the paper's Table I
//     performance counters;
//   - internal/workload: a synthetic SPEC-CPU2006-like benchmark suite with
//     per-benchmark behavioural signatures and execution phases;
//   - internal/counters: Table I metric definitions and the section-based
//     data collector;
//   - internal/mtree: the M5' model-tree learner (the paper's method),
//     with internal/linreg supplying the leaf regressions;
//   - internal/regtree, internal/ann, internal/svm, internal/naive: the
//     comparison models (CART, multilayer perceptron, epsilon-SVR, and the
//     traditional fixed-penalty model);
//   - internal/eval: metrics and k-fold cross validation;
//   - internal/analysis: the what/how-much performance analysis layer;
//   - internal/experiments: one function per paper table/figure plus
//     ablations, shared by cmd/experiments and the benchmarks in
//     bench_test.go.
//
// See README.md for usage, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package repro
