package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/counters"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/mtree"
	"repro/internal/naive"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// TestEndToEndPipeline drives the entire study at reduced scale:
// simulate -> CSV round trip -> train -> persist -> cross-validate ->
// analyze. It asserts the qualitative results the paper rests on.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	// 1. Simulate ~700 sections.
	ccfg := counters.DefaultCollectConfig()
	col, err := counters.CollectSuite(workload.SuiteScaled(0.1), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if col.Data.Len() < 400 {
		t.Fatalf("only %d sections collected", col.Data.Len())
	}

	// 2. The dataset must survive a CSV round trip bit-exactly.
	var buf bytes.Buffer
	if err := col.Data.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := dataset.ReadCSV(&buf, "CPI")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != col.Data.Len() {
		t.Fatalf("CSV round trip lost rows: %d vs %d", d.Len(), col.Data.Len())
	}

	// 3. Train the tree at a scale-adjusted leaf minimum.
	tcfg := mtree.DefaultConfig()
	tcfg.MinLeaf = 43
	tree, err := mtree.Build(d, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() < 3 {
		t.Errorf("tree has only %d leaves", tree.NumLeaves())
	}

	// 4. Persist and reload; predictions must be identical.
	var tbuf bytes.Buffer
	if err := tree.WriteJSON(&tbuf); err != nil {
		t.Fatal(err)
	}
	back, err := mtree.ReadJSON(&tbuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if tree.Predict(d.Row(i)) != back.Predict(d.Row(i)) {
			t.Fatal("persisted tree predicts differently")
		}
	}

	// 5. Cross-validate: even at 10% scale the tree should correlate
	// strongly out of fold and beat the fixed-penalty model decisively.
	learner := eval.LearnerFunc{N: "M5'", F: func(d *dataset.Dataset) (eval.Regressor, error) {
		return mtree.Build(d, tcfg)
	}}
	res, err := eval.CrossValidate(learner, d, 5, 1, parallel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pooled.Correlation < 0.9 {
		t.Errorf("CV correlation %.3f < 0.9", res.Pooled.Correlation)
	}
	fixed := naive.NewCore2FixedPenalties(d)
	fm, err := eval.Evaluate(fixed, d)
	if err != nil {
		t.Fatal(err)
	}
	if fm.RAE < 2*res.Pooled.RAE {
		t.Errorf("fixed-penalty RAE %.2f not far above tree RAE %.2f", fm.RAE, res.Pooled.RAE)
	}

	// 6. The analysis layer: census must concentrate cactusADM, and the
	// what/how-much report for mcf must rank a memory event first.
	// At this reduced scale the tree is finer-grained than the paper's
	// (~40-instance leaves), so cactusADM may straddle two adjacent
	// classes; the full-scale >=80% check lives in the leafcensus
	// experiment.
	census := analysis.Census(tree, col)
	if _, share := census.DominantLeaf("436.cactusADM"); share < 0.25 {
		t.Errorf("cactusADM dominant class share %.2f < 0.25", share)
	}
	mcf := d.EmptyLike()
	for i, l := range col.Labels {
		if l.Benchmark == "429.mcf" {
			mcf.MustAppend(col.Data.Row(i).Clone())
		}
	}
	rep := analysis.AnalyzeWorkload(tree, mcf)
	if len(rep.Issues) == 0 {
		t.Fatal("no issues for mcf")
	}
	memory := map[string]bool{
		"L2M": true, "L1DM": true, "DtlbLdReM": true, "DtlbLdM": true,
		"Dtlb": true, "DtlbL0LdM": true,
	}
	if !memory[rep.Issues[0].Name] {
		t.Errorf("mcf top issue %q, want a memory event", rep.Issues[0].Name)
	}
}
